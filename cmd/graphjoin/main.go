// Command graphjoin runs any graph-pattern query on any dataset with any
// engine — the reproduction's equivalent of a database client:
//
//	graphjoin -dataset ego-Facebook -query 3-clique -engine lftj
//	graphjoin -dataset ca-GrQc -engine ms -selectivity 10 \
//	    -datalog 'v1(a), v2(d), edge(a,b), edge(b,c), edge(c,d)'
//	graphjoin -nodes 10000 -edges 50000 -model hk -query 4-clique -engine graphlab
//	graphjoin -dataset ca-GrQc -query 3-path -engine ms -explain -stats -repeat 100
//
// Beyond the benchmark graph schema, -relation/-load define and fill an
// arbitrary schema (a general Store): directed and edge-labeled graphs are
// ordinary multi-relation schemas. Relations are declared name:arity and
// loaded from whitespace- or comma-separated integer rows:
//
//	graphjoin -relation follows:2 -relation likes:2 \
//	    -load follows=follows.tsv -load likes=likes.tsv \
//	    -datalog 'follows(a,b), follows(b,c), likes(c,a)'
//
// The query is prepared once (validated, GAO fixed, indexes bound) and then
// executed -repeat times; -explain prints the compiled plan and -stats the
// unified execution counters.
//
// Named queries: 3-clique, 4-clique, 4-cycle, 3-path, 4-path, 1-tree,
// 2-tree, 2-comb, 2-lollipop, 3-lollipop.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/query"
)

// listFlag collects a repeatable string flag.
type listFlag []string

func (l *listFlag) String() string { return strings.Join(*l, ",") }
func (l *listFlag) Set(s string) error {
	*l = append(*l, s)
	return nil
}

func main() {
	var relations, loads listFlag
	var (
		datasetName = flag.String("dataset", "", "catalog dataset name (see DESIGN.md)")
		model       = flag.String("model", "ba", "generator when -dataset empty: er | ba | hk")
		nodes       = flag.Int("nodes", 10000, "generated graph nodes")
		edges       = flag.Int("edges", 50000, "generated graph edges")
		seed        = flag.Int64("seed", 1, "generator seed")
		queryName   = flag.String("query", "3-clique", "named benchmark query")
		datalog     = flag.String("datalog", "", "inline Datalog query body (overrides -query)")
		engineName  = flag.String("engine", "lftj", "lftj | ms | hybrid | psql | monetdb | yannakakis | graphlab")
		backendName = flag.String("backend", "", "index backend for lftj/ms: flat | csr | csr-sharded (empty = csr)")
		selectivity = flag.Int("selectivity", 10, "node-sample selectivity s (samples pick nodes w.p. 1/s)")
		timeout     = flag.Duration("timeout", 30*time.Minute, "execution timeout (paper protocol: 30m)")
		workers     = flag.Int("workers", 0, "worker pool size (0 = all cores)")
		showAGM     = flag.Bool("agm", false, "print the AGM output-size bound")
		explain     = flag.Bool("explain", false, "print the compiled plan (GAO, per-atom index, AGM bound)")
		showStats   = flag.Bool("stats", false, "print the unified execution counters after the run")
		repeat      = flag.Int("repeat", 1, "executions of the prepared query (plan compiled once)")
	)
	flag.Var(&relations, "relation", "define a store relation as name:arity (repeatable; switches to the general schema mode)")
	flag.Var(&loads, "load", "load a defined relation from a file of integer rows, as name=path (repeatable)")
	flag.Parse()

	var s *repro.Store
	var desc string
	if len(relations) > 0 {
		if *datalog == "" {
			log.Fatal("-relation requires a -datalog query over the defined schema")
		}
		// The graph-mode flags have no meaning against a user-defined
		// schema; reject them instead of silently dropping them.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "dataset", "model", "nodes", "edges", "seed", "selectivity", "query":
				log.Fatalf("-%s applies to the benchmark graph mode and conflicts with -relation", f.Name)
			}
		})
		s = buildStore(relations, loads)
		var parts []string
		for _, name := range s.Relations() {
			arity, _ := s.Arity(name)
			n := 0
			if r, err := s.DB().Relation(name); err == nil {
				n = r.Len()
			}
			parts = append(parts, fmt.Sprintf("%s/%d (%d tuples)", name, arity, n))
		}
		desc = "store: " + strings.Join(parts, ", ")
	} else {
		if len(loads) > 0 {
			log.Fatal("-load requires the relations to be defined with -relation")
		}
		g := buildGraph(*datasetName, *model, *nodes, *edges, *seed)
		g.SetSelectivity(*selectivity, *seed)
		s = g.Store()
		desc = fmt.Sprintf("graph: %d nodes, %d edges", g.Nodes(), g.Edges())
	}

	var q *repro.Query
	var err error
	if *datalog != "" {
		q, err = s.ParseQuery("adhoc", *datalog)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		q, err = namedQuery(*queryName)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("%s; query %s: %s\n", desc, q.Name, q)
	if *showAGM {
		if bound, err := s.AGMBound(q); err == nil {
			fmt.Printf("AGM bound: %.3g\n", bound)
		}
	}

	// Prepare once: the query is validated, the GAO fixed, and the
	// GAO-consistent indexes bound here; the executions below are pure.
	prepStart := time.Now()
	p, err := s.Prepare(q, repro.Options{
		Algorithm: repro.Algorithm(*engineName),
		Workers:   *workers,
		Backend:   repro.Backend(*backendName),
	})
	if err != nil {
		log.Fatalf("%s: %v", *engineName, err)
	}
	prepElapsed := time.Since(prepStart)
	if *explain {
		fmt.Print(p.Explain())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	start := time.Now()
	var n int64
	for i := 0; i < max(*repeat, 1); i++ {
		n, err = p.Count(ctx)
		if err != nil {
			log.Fatalf("%s: %v", *engineName, err)
		}
	}
	elapsed := time.Since(start)
	if *repeat > 1 {
		fmt.Printf("%s: %d results; %d runs in %v (%v/run, prepared in %v)\n",
			*engineName, n, *repeat, elapsed.Round(time.Millisecond),
			(elapsed / time.Duration(*repeat)).Round(time.Microsecond), prepElapsed.Round(time.Microsecond))
	} else {
		fmt.Printf("%s: %d results in %v (prepared in %v)\n",
			*engineName, n, elapsed.Round(time.Millisecond), prepElapsed.Round(time.Microsecond))
	}
	if *showStats {
		st := p.Stats()
		fmt.Printf("stats: executions=%d outputs=%d seeks=%d probes=%d memoHits=%d constraints=%d freeTupleSteps=%d reuseHits=%d memoStores=%d\n",
			st.Executions, st.Outputs, st.Seeks, st.Probes, st.ProbeMemoHits, st.Constraints, st.FreeTupleSteps, st.ReuseHits, st.MemoStores)
		fmt.Printf("plan:  cacheHits=%d cacheMisses=%d gaoDerivations=%d indexBindings=%d\n",
			st.PlanCacheHits, st.PlanCacheMisses, st.GAODerivations, st.IndexBindings)
	}
}

// buildGraph constructs the benchmark graph from the catalog or a generator.
func buildGraph(datasetName, model string, nodes, edges int, seed int64) *repro.Graph {
	if datasetName != "" {
		g, err := repro.Dataset(datasetName)
		if err != nil {
			log.Fatal(err)
		}
		return g
	}
	m := repro.BarabasiAlbert
	switch model {
	case "er":
		m = repro.ErdosRenyi
	case "hk":
		m = repro.HolmeKim
	case "ba":
	default:
		log.Fatalf("unknown model %q", model)
	}
	return repro.GenerateGraph(m, nodes, edges, seed)
}

// buildStore defines the -relation schema and loads the -load files.
func buildStore(relations, loads []string) *repro.Store {
	s := repro.NewStore()
	for _, spec := range relations {
		name, arityStr, ok := strings.Cut(spec, ":")
		if !ok {
			log.Fatalf("-relation %q: want name:arity", spec)
		}
		arity, err := strconv.Atoi(arityStr)
		if err != nil {
			log.Fatalf("-relation %q: bad arity: %v", spec, err)
		}
		if err := s.DefineRelation(name, arity); err != nil {
			log.Fatal(err)
		}
	}
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("-load %q: want name=path", spec)
		}
		tuples, err := readTuples(path)
		if err != nil {
			log.Fatalf("-load %s: %v", name, err)
		}
		if err := s.Load(name, tuples); err != nil {
			log.Fatal(err)
		}
	}
	return s
}

// readTuples reads integer rows, one tuple per line, columns separated by
// whitespace or commas; blank lines and #-comments are skipped.
func readTuples(path string) ([][]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var tuples [][]int64
	sc := bufio.NewScanner(f)
	// Machine-generated rows can exceed bufio's default 64KB token cap.
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.FieldsFunc(text, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t'
		})
		tuple := make([]int64, 0, len(fields))
		for _, fld := range fields {
			v, err := strconv.ParseInt(fld, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", path, line, err)
			}
			tuple = append(tuple, v)
		}
		tuples = append(tuples, tuple)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tuples, nil
}

func namedQuery(name string) (*repro.Query, error) {
	switch name {
	case "3-clique", "triangle":
		return query.Clique(3), nil
	case "4-clique":
		return query.Clique(4), nil
	case "4-cycle":
		return query.Cycle(4), nil
	case "3-path":
		return query.Path(3), nil
	case "4-path":
		return query.Path(4), nil
	case "1-tree":
		return query.Tree(1), nil
	case "2-tree":
		return query.Tree(2), nil
	case "2-comb":
		return query.Comb(), nil
	case "2-lollipop":
		return query.Lollipop(2), nil
	case "3-lollipop":
		return query.Lollipop(3), nil
	default:
		return nil, fmt.Errorf("unknown query %q", name)
	}
}
