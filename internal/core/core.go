// Package core holds the pieces shared by every join engine in the
// reproduction: the database (a named collection of relations with a cache
// of GAO-consistent secondary indexes, §4.1) and the Engine interface the
// benchmark harness drives.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/query"
	"repro/internal/relation"
)

// Typed failure kinds, so API callers can branch on errors.Is instead of
// matching message text.
var (
	// ErrUnknownRelation reports a query atom naming a relation the
	// database does not hold.
	ErrUnknownRelation = errors.New("unknown relation")
	// ErrUnboundVar reports a query variable not covered by the global
	// attribute order (or not bound by any atom).
	ErrUnboundVar = errors.New("variable not bound")
)

// DB is a collection of named relations. Engines request GAO-consistent
// secondary indexes through Index; results are cached because the paper's
// protocol reuses the same physical design across queries (§4.1: "all input
// relations are indexed consistent with this GAO"). The DB also caches
// compiled query plans (see plan.go); both caches are invalidated per
// relation by Add.
type DB struct {
	mu      sync.Mutex
	rels    map[string]*relation.Relation
	indexes map[string]*relation.Relation
	tries   map[string]IndexBackend
	plans   map[string]*Plan
	// version increments on every Add; plan compilation snapshots it so a
	// plan bound against relations that were replaced mid-compile is never
	// cached (it would otherwise dodge Add's invalidation sweep forever).
	version int64
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		rels:    make(map[string]*relation.Relation),
		indexes: make(map[string]*relation.Relation),
		tries:   make(map[string]IndexBackend),
		plans:   make(map[string]*Plan),
	}
}

// Add registers a relation under its name, replacing any previous relation
// with that name and invalidating its cached indexes and any cached plans
// that read it.
func (db *DB) Add(r *relation.Relation) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.version++
	db.rels[r.Name()] = r
	prefix := r.Name() + "/"
	for k := range db.indexes {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(db.indexes, k)
		}
	}
	for k := range db.tries {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(db.tries, k)
		}
	}
	for k, p := range db.plans {
		if p.reads(r.Name()) {
			delete(db.plans, k)
		}
	}
}

// Relation returns the named relation.
func (db *DB) Relation(name string) (*relation.Relation, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("core: %w: %q", ErrUnknownRelation, name)
	}
	return r, nil
}

// Names returns the registered relation names (unordered).
func (db *DB) Names() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.rels))
	for n := range db.rels {
		out = append(out, n)
	}
	return out
}

// Index returns the named relation with its columns permuted by perm and
// re-sorted, caching the result. perm[k] is the source column stored at
// output position k.
func (db *DB) Index(name string, perm []int) (*relation.Relation, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.indexLocked(name, perm)
}

func indexKey(name string, perm []int) string {
	key := name + "/"
	for _, p := range perm {
		key += strconv.Itoa(p) + ","
	}
	return key
}

func (db *DB) indexLocked(name string, perm []int) (*relation.Relation, error) {
	key := indexKey(name, perm)
	if idx, ok := db.indexes[key]; ok {
		return idx, nil
	}
	r, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("core: %w: %q", ErrUnknownRelation, name)
	}
	idx := r.Permute(perm)
	db.indexes[key] = idx
	return idx, nil
}

// TrieIndex returns the named relation's GAO-consistent index under the
// chosen backend, caching the built index alongside the permuted relation
// (both caches are invalidated per relation by Add). The flat backend wraps
// the permuted relation directly; the CSR backend additionally materializes
// its trie levels here, so the build cost is paid once per
// relation × permutation × backend and amortized across executions.
func (db *DB) TrieIndex(name string, perm []int, backend Backend) (IndexBackend, error) {
	if backend == "" {
		backend = DefaultBackend
	}
	key := indexKey(name, perm) + "#" + string(backend)
	db.mu.Lock()
	defer db.mu.Unlock()
	if idx, ok := db.tries[key]; ok {
		return idx, nil
	}
	rel, err := db.indexLocked(name, perm)
	if err != nil {
		return nil, err
	}
	idx, err := NewIndexBackend(rel, backend)
	if err != nil {
		return nil, err
	}
	db.tries[key] = idx
	return idx, nil
}

// Engine is a join algorithm. Count returns the number of result tuples of
// the natural join; Enumerate calls emit for every result tuple with the
// variable bindings in q.Vars() order and stops early if emit returns false.
// Both honor context cancellation.
type Engine interface {
	Name() string
	Count(ctx context.Context, q *query.Query, db *DB) (int64, error)
	Enumerate(ctx context.Context, q *query.Query, db *DB, emit func([]int64) bool) error
}

// AtomIndex resolves the GAO-consistent index for one atom: the atom's
// variables sorted by GAO position, the permutation applied, and the global
// GAO positions of its columns in index order.
type AtomIndex struct {
	// Rel is the permuted flat relation — always present, for engines that
	// need row-level access (generic join's span narrowing) and for plan
	// introspection.
	Rel *relation.Relation
	// Index is the backend-selected trie index over Rel; the trie-driven
	// engines (LFTJ, Minesweeper) execute exclusively against it.
	Index IndexBackend
	// VarPos[k] is the GAO position of the index's column k.
	VarPos []int
}

// BindAtoms builds GAO-consistent indexes for all atoms of a query under the
// chosen backend (paper §4.1). gaoIndex maps variable name to GAO position.
func BindAtoms(q *query.Query, db *DB, gao []string, backend Backend) ([]AtomIndex, error) {
	pos := make(map[string]int, len(gao))
	for i, v := range gao {
		pos[v] = i
	}
	out := make([]AtomIndex, len(q.Atoms))
	for i, a := range q.Atoms {
		order := make([]int, len(a.Vars)) // column order by GAO position
		for k := range order {
			order[k] = k
		}
		sort.Slice(order, func(x, y int) bool {
			return pos[a.Vars[order[x]]] < pos[a.Vars[order[y]]]
		})
		idx, err := db.Index(a.Rel, order)
		if err != nil {
			return nil, err
		}
		trie, err := db.TrieIndex(a.Rel, order, backend)
		if err != nil {
			return nil, err
		}
		varPos := make([]int, len(order))
		for k, col := range order {
			p, ok := pos[a.Vars[col]]
			if !ok {
				return nil, fmt.Errorf("core: %w: GAO misses variable %q of atom %s", ErrUnboundVar, a.Vars[col], a)
			}
			varPos[k] = p
		}
		out[i] = AtomIndex{Rel: idx, Index: trie, VarPos: varPos}
	}
	return out, nil
}

// CheckEvery is how many inner-loop steps engines may take between context
// checks; exported so all engines share the same responsiveness contract.
const CheckEvery = 4096

// Ticker counts engine steps and surfaces context cancellation with low
// overhead.
type Ticker struct {
	n   int
	ctx context.Context
}

// NewTicker returns a Ticker for ctx.
func NewTicker(ctx context.Context) *Ticker { return &Ticker{ctx: ctx} }

// Tick reports a non-nil error when the context is done; it only inspects
// the context every CheckEvery calls.
func (t *Ticker) Tick() error {
	t.n++
	if t.n%CheckEvery != 0 {
		return nil
	}
	return t.ctx.Err()
}
