package hypergraph

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/query"
)

// randomBinaryQuery builds a random query over binary edge atoms plus unary
// atoms — the shape of every graph-pattern workload in the paper.
func randomBinaryQuery(rng *rand.Rand) *query.Query {
	nVars := 2 + rng.Intn(4)
	vars := make([]string, nVars)
	for i := range vars {
		vars[i] = fmt.Sprintf("x%d", i)
	}
	var atoms []query.Atom
	nAtoms := 1 + rng.Intn(5)
	for i := 0; i < nAtoms; i++ {
		if rng.Intn(4) == 0 {
			atoms = append(atoms, query.Atom{Rel: "u", Vars: []string{vars[rng.Intn(nVars)]}})
			continue
		}
		a, b := rng.Intn(nVars), rng.Intn(nVars)
		if a == b {
			b = (b + 1) % nVars
		}
		atoms = append(atoms, query.Atom{Rel: "e", Vars: []string{vars[a], vars[b]}})
	}
	return query.New("rnd", atoms...)
}

// Property: whatever FindChainGAO returns must actually satisfy the chain
// condition and cover every variable.
func TestFindChainGAOSelfConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomBinaryQuery(rng)
		gao, ok := FindChainGAO(q.Vars(), q.Atoms)
		if !ok {
			return true
		}
		if len(gao) != q.NumVars() {
			return false
		}
		return IsChainGAO(gao, q.Atoms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property (Prop 4.2 direction): β-acyclicity implies a chain GAO exists.
func TestBetaAcyclicImpliesChainGAO(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomBinaryQuery(rng)
		if !FromQuery(q).IsBetaAcyclic() {
			return true
		}
		_, ok := FindChainGAO(q.Vars(), q.Atoms)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: PlanQuery always yields a GAO covering all variables, a
// chain-valid skeleton, and a partition of the atoms.
func TestPlanQueryInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomBinaryQuery(rng)
		plan, err := PlanQuery(q)
		if err != nil {
			return true // some random queries legitimately have no skeleton
		}
		if len(plan.GAO) != q.NumVars() {
			return false
		}
		if len(plan.Skeleton)+len(plan.OffSkel) != len(q.Atoms) {
			return false
		}
		var kept []query.Atom
		for _, i := range plan.Skeleton {
			kept = append(kept, q.Atoms[i])
		}
		return IsChainGAO(plan.GAO, kept)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
