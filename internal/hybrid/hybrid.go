// Package hybrid implements the paper's §4.12 combination algorithm for
// lollipop queries: Minesweeper-style evaluation of the β-acyclic path part
// (benefiting from Ideas 5–6 caching on the path attributes) and Leapfrog
// Triejoin for the clique part, with the clique count memoized per
// attachment vertex — "all gaps are used to advance the frontier" on the
// clique side. Because the two parts share exactly one variable, the total
// is Σ over path bindings of cliqueCount(attachment).
package hybrid

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/lftj"
	"repro/internal/minesweeper"
	"repro/internal/query"
)

// Engine is the hybrid engine. It accepts queries that split into a
// β-acyclic part and a remainder sharing a single attachment variable — the
// paper's {2,3}-lollipop shapes. Splits are detected automatically.
type Engine struct{}

// Name implements core.Engine.
func (Engine) Name() string { return "hybrid" }

// Split describes the decomposition of a query.
type split struct {
	pathAtoms   []query.Atom
	cliqueAtoms []query.Atom
	attachment  string
}

// splitQuery partitions atoms into the longest chain-valid (β-acyclic)
// prefix whose remainder shares exactly one variable with it — the lollipop
// shape: the path part up to and including the attachment vertex, and the
// clique hanging off it. Queries without such a split are rejected.
func splitQuery(q *query.Query) (*split, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(q.Atoms) < 2 {
		return nil, fmt.Errorf("hybrid: query %q has no split point", q.Name)
	}
	for k := len(q.Atoms) - 1; k >= 1; k-- {
		path := q.Atoms[:k]
		clique := q.Atoms[k:]
		if !chainValid(path) {
			continue
		}
		inPath := make(map[string]bool)
		for _, v := range varsOf(path) {
			inPath[v] = true
		}
		var shared []string
		for _, v := range varsOf(clique) {
			if inPath[v] {
				shared = append(shared, v)
			}
		}
		// The remainder must be genuinely cyclic — otherwise the whole query
		// is β-acyclic and Minesweeper alone is the right tool (§5.2.2).
		if len(shared) == 1 && !chainValid(clique) {
			return &split{pathAtoms: path, cliqueAtoms: clique, attachment: shared[0]}, nil
		}
	}
	return nil, fmt.Errorf("hybrid: query %q has no path/clique split with a single attachment variable", q.Name)
}

func chainValid(atoms []query.Atom) bool {
	_, ok := hypergraph.FindChainGAO(varsOf(atoms), atoms)
	return ok
}

func varsOf(atoms []query.Atom) []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range atoms {
		for _, v := range a.Vars {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Count implements core.Engine.
func (e Engine) Count(ctx context.Context, q *query.Query, db *core.DB) (int64, error) {
	sp, err := splitQuery(q)
	if err != nil {
		return 0, err
	}
	// Path part: enumerate with Minesweeper, counting bindings per
	// attachment value. Enumerating (rather than counting) is required: the
	// multiplier differs per attachment vertex.
	pathQ := query.New(q.Name+"/path", sp.pathAtoms...)
	attachIdx := -1
	for i, v := range pathQ.Vars() {
		if v == sp.attachment {
			attachIdx = i
			break
		}
	}
	if attachIdx < 0 {
		return 0, fmt.Errorf("hybrid: attachment %q missing from path part", sp.attachment)
	}
	pathCounts := make(map[int64]int64)
	ms := minesweeper.Engine{}
	if err := ms.Enumerate(ctx, pathQ, db, func(t []int64) bool {
		pathCounts[t[attachIdx]]++
		return true
	}); err != nil {
		return 0, err
	}

	// Clique part: LFTJ restricted to each needed attachment value, memoized
	// ("Idea 7 implemented completely on the clique part").
	cliqueQ := query.New(q.Name+"/clique", sp.cliqueAtoms...)
	gao := append([]string{sp.attachment}, others(cliqueQ.Vars(), sp.attachment)...)
	var total int64
	for v, mult := range pathCounts {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		cnt, err := (lftj.Engine{Opts: lftj.Options{
			GAO:           gao,
			FirstVarRange: &lftj.Range{Lo: v, Hi: v + 1},
		}}).Count(ctx, cliqueQ, db)
		if err != nil {
			return 0, err
		}
		total += mult * cnt
	}
	return total, nil
}

func others(vars []string, skip string) []string {
	var out []string
	for _, v := range vars {
		if v != skip {
			out = append(out, v)
		}
	}
	return out
}

// Enumerate implements core.Engine by joining the parts explicitly; it is
// provided for completeness and testing (the paper's hybrid is count-only).
func (e Engine) Enumerate(ctx context.Context, q *query.Query, db *core.DB, emit func([]int64) bool) error {
	sp, err := splitQuery(q)
	if err != nil {
		return err
	}
	pathQ := query.New(q.Name+"/path", sp.pathAtoms...)
	cliqueQ := query.New(q.Name+"/clique", sp.cliqueAtoms...)
	idx := q.VarIndex()
	pathPerm := make([]int, len(pathQ.Vars()))
	for i, v := range pathQ.Vars() {
		pathPerm[i] = idx[v]
	}
	cliquePerm := make([]int, len(cliqueQ.Vars()))
	for i, v := range cliqueQ.Vars() {
		cliquePerm[i] = idx[v]
	}
	attachPath := -1
	for i, v := range pathQ.Vars() {
		if v == sp.attachment {
			attachPath = i
		}
	}
	gao := append([]string{sp.attachment}, others(cliqueQ.Vars(), sp.attachment)...)
	// Group clique bindings per attachment value lazily.
	cliqueCache := make(map[int64][][]int64)
	out := make([]int64, q.NumVars())
	stop := false
	err = (minesweeper.Engine{}).Enumerate(ctx, pathQ, db, func(pt []int64) bool {
		v := pt[attachPath]
		rows, ok := cliqueCache[v]
		if !ok {
			err := (lftj.Engine{Opts: lftj.Options{
				GAO:           gao,
				FirstVarRange: &lftj.Range{Lo: v, Hi: v + 1},
			}}).Enumerate(ctx, cliqueQ, db, func(ct []int64) bool {
				rows = append(rows, append([]int64(nil), ct...))
				return true
			})
			if err != nil {
				stop = true
				return false
			}
			cliqueCache[v] = rows
		}
		for _, ct := range rows {
			for i, p := range pathPerm {
				out[p] = pt[i]
			}
			for i, p := range cliquePerm {
				out[p] = ct[i]
			}
			if !emit(out) {
				stop = true
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	_ = stop
	return ctx.Err()
}
