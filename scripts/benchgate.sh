#!/usr/bin/env sh
# benchgate.sh OLD NEW — benchmark regression gate.
#
# Compares two `go test -bench` outputs: for every benchmark name present in
# both files, the ns/op ratio new/old is computed, and the geometric mean of
# the ratios must not exceed 1 + BENCHGATE_MAX_REGRESSION (default 0.10,
# i.e. a >10% aggregate slowdown fails). Individual benchmarks are noisy at
# -benchtime=1x — the geomean across the whole suite is what gates. The
# biggest movers in both directions are printed even when the gate passes,
# so a green run still shows where the time went.
#
# On the first run there is no previous artifact: a missing OLD file (or two
# files with no benchmark in common) is not an error — the gate is skipped
# with exit code 3, distinct from both pass and fail, so CI can annotate
# "first run, nothing compared" instead of silently going green. A missing
# NEW file is still a usage error (the caller forgot to produce the current
# run).
#
# Exit codes: 0 pass, 1 regression, 2 usage error, 3 gate skipped (first
# run / nothing comparable).
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 old-bench.txt new-bench.txt" >&2
    exit 2
fi
old="$1"
new="$2"
max="${BENCHGATE_MAX_REGRESSION:-0.10}"

if [ ! -f "$new" ]; then
    echo "benchgate: current benchmark output $new not found" >&2
    exit 2
fi
if [ ! -f "$old" ]; then
    echo "benchgate: no previous benchmark artifact ($old) — first run, nothing to compare against; gate skipped"
    exit 3
fi

# Extract "name ns_per_op" pairs. Benchmark lines look like:
#   BenchmarkFoo/bar-8   123   45678 ns/op   90 B/op   1 allocs/op
extract() {
    awk '/^Benchmark/ && / ns\/op/ {
        for (i = 1; i <= NF; i++) {
            if ($i == "ns/op") { print $1, $(i-1); break }
        }
    }' "$1"
}

tmp="${TMPDIR:-/tmp}/benchgate.$$"
trap 'rm -f "$tmp.old" "$tmp.new" "$tmp.ratio"' EXIT
extract "$old" | sort > "$tmp.old"
extract "$new" | sort > "$tmp.new"

# One line per comparable benchmark: "ratio name old_ns new_ns".
join "$tmp.old" "$tmp.new" \
    | awk '$2 > 0 && $3 > 0 { printf "%.6f %s %.0f %.0f\n", $3 / $2, $1, $2, $3 }' \
    > "$tmp.ratio"

if [ ! -s "$tmp.ratio" ]; then
    echo "benchgate: no comparable benchmarks between $old and $new; gate skipped"
    exit 3
fi

# The diff, printed pass or fail: the five biggest movers each way.
echo "benchgate: biggest changes (new/old ns/op ratio):"
sort -g "$tmp.ratio" | head -n 5 \
    | awk '{ printf "  %-60s %8.0f -> %8.0f ns/op (%.2fx)\n", $2, $3, $4, $1 }'
echo "  ..."
sort -g "$tmp.ratio" | tail -n 5 \
    | awk '{ printf "  %-60s %8.0f -> %8.0f ns/op (%.2fx)\n", $2, $3, $4, $1 }'

awk -v max="$max" '
    { sumlog += log($1); n++ }
    END {
        geomean = exp(sumlog / n)
        printf "benchgate: %d benchmarks, geomean ratio %.4f (gate: <= %.4f)\n", n, geomean, 1 + max
        if (geomean > 1 + max) {
            print "benchgate: FAIL — aggregate benchmark regression above threshold"
            exit 1
        }
        print "benchgate: OK"
    }' "$tmp.ratio"
