// Command quickstart is the smallest end-to-end use of the library: build a
// graph, count a pattern with the worst-case-optimal engine, and compare
// engines on the same query.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	ctx := context.Background()

	// A scale-free social-network stand-in: 20k vertices, ~100k edges.
	g := repro.GenerateGraph(repro.BarabasiAlbert, 20_000, 100_000, 42)
	fmt.Printf("graph: %d nodes, %d edges\n", g.Nodes(), g.Edges())

	// The AGM bound tells us the worst-case output size any algorithm must
	// be prepared for; LFTJ runs in Õ(N + AGM).
	q := repro.Triangles()
	bound, err := repro.AGMBound(g, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AGM bound for %s: %.0f\n", q.Name, bound)

	for _, alg := range []string{"lftj", "ms", "graphlab", "psql"} {
		start := time.Now()
		n, err := repro.Count(ctx, g, q, repro.Options{Algorithm: alg})
		if err != nil {
			log.Fatalf("%s: %v", alg, err)
		}
		fmt.Printf("%-9s %8d triangles in %v\n", alg, n, time.Since(start).Round(time.Millisecond))
	}

	// Queries can also be written in the paper's Datalog syntax.
	custom, err := repro.ParseQuery("wedge", "edge(a, b), edge(b, c)")
	if err != nil {
		log.Fatal(err)
	}
	n, err := repro.Count(ctx, g, custom, repro.Options{Algorithm: "lftj"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wedges (2-paths): %d\n", n)
}
