package graphengine

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/lftj"
	"repro/internal/query"
	"repro/internal/testutil"
)

func TestCliquesOnK4(t *testing.T) {
	db := testutil.GraphDB(testutil.K4, nil)
	e := Engine{}
	got, err := e.Count(context.Background(), query.Clique(3), db)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("triangles(K4) = %d, want 4", got)
	}
	got, err = e.Count(context.Background(), query.Clique(4), db)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("4-cliques(K4) = %d, want 1", got)
	}
}

func TestDifferentialVsLFTJ(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		db := testutil.RandomGraphDB(rng, 10+rng.Intn(30), 20+rng.Intn(200), 2)
		for _, q := range []*query.Query{query.Clique(3), query.Clique(4)} {
			want, err := (lftj.Engine{}).Count(context.Background(), q, db)
			if err != nil {
				t.Fatal(err)
			}
			got, err := (Engine{Workers: 1 + rng.Intn(4)}).Count(context.Background(), q, db)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("trial %d %s: graphengine = %d, lftj = %d", trial, q.Name, got, want)
			}
		}
	}
}

func TestUnsupportedQueries(t *testing.T) {
	db := testutil.GraphDB(testutil.K4, nil)
	e := Engine{}
	if _, err := e.Count(context.Background(), query.Path(3), db); err == nil {
		t.Error("3-path should be rejected (clique-only engine)")
	}
	if err := e.Enumerate(context.Background(), query.Clique(3), db, func([]int64) bool { return true }); err == nil {
		t.Error("enumeration should be unsupported")
	}
}

func TestEmptyGraph(t *testing.T) {
	db := testutil.GraphDB(nil, nil)
	got, err := (Engine{}).Count(context.Background(), query.Clique(3), db)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("triangles(empty) = %d, want 0", got)
	}
}
