package relation

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func buildRel(t *testing.T, arity int, tuples ...[]int64) *Relation {
	t.Helper()
	return FromTuples("R", arity, tuples)
}

func TestBuildSortsAndDedups(t *testing.T) {
	r := buildRel(t, 2, []int64{3, 1}, []int64{1, 2}, []int64{3, 1}, []int64{1, 1}, []int64{2, 9})
	want := [][]int64{{1, 1}, {1, 2}, {2, 9}, {3, 1}}
	if r.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(want))
	}
	for i, w := range want {
		if !reflect.DeepEqual(r.Tuple(i), w) {
			t.Errorf("Tuple(%d) = %v, want %v", i, r.Tuple(i), w)
		}
	}
}

func TestEmptyRelation(t *testing.T) {
	r := NewBuilder("E", 2).Build()
	if r.Len() != 0 {
		t.Fatalf("Len = %d, want 0", r.Len())
	}
	if lo, hi := r.PrefixRange([]int64{1}); lo != hi {
		t.Errorf("PrefixRange on empty relation = [%d,%d), want empty", lo, hi)
	}
	if _, found := r.ProbeGap([]int64{1, 2}); found {
		t.Error("ProbeGap on empty relation reported membership")
	}
}

func TestBuilderPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"arity0":    func() { NewBuilder("R", 0) },
		"wrongLen":  func() { NewBuilder("R", 2).Add(1) },
		"negative":  func() { NewBuilder("R", 1).Add(-1) },
		"posInfBig": func() { NewBuilder("R", 1).Add(PosInf + 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestPrefixRangeAndContains(t *testing.T) {
	r := buildRel(t, 3,
		[]int64{5, 1, 4}, []int64{5, 1, 7}, []int64{5, 1, 12},
		[]int64{7, 4, 6}, []int64{7, 9, 8}, []int64{7, 9, 13},
		[]int64{10, 4, 1},
	)
	lo, hi := r.PrefixRange([]int64{5, 1})
	if hi-lo != 3 {
		t.Errorf("PrefixRange(5,1) size = %d, want 3", hi-lo)
	}
	lo, hi = r.PrefixRange([]int64{7})
	if hi-lo != 3 {
		t.Errorf("PrefixRange(7) size = %d, want 3", hi-lo)
	}
	if lo, hi := r.PrefixRange([]int64{6}); lo != hi {
		t.Error("PrefixRange(6) should be empty")
	}
	if !r.Contains([]int64{7, 9, 8}) {
		t.Error("Contains(7,9,8) = false")
	}
	if r.Contains([]int64{7, 9, 9}) {
		t.Error("Contains(7,9,9) = true")
	}
	if r.Contains([]int64{7, 9}) {
		t.Error("Contains with short tuple = true")
	}
}

func TestDistinctPrefixes(t *testing.T) {
	r := buildRel(t, 2, []int64{1, 1}, []int64{1, 2}, []int64{2, 1}, []int64{3, 3})
	if got := r.DistinctPrefixes(1); got != 3 {
		t.Errorf("DistinctPrefixes(1) = %d, want 3", got)
	}
	if got := r.DistinctPrefixes(2); got != 4 {
		t.Errorf("DistinctPrefixes(2) = %d, want 4", got)
	}
	if got := r.DistinctPrefixes(0); got != 1 {
		t.Errorf("DistinctPrefixes(0) = %d, want 1", got)
	}
}

func TestPermute(t *testing.T) {
	r := buildRel(t, 2, []int64{1, 9}, []int64{2, 3}, []int64{2, 7})
	p := r.Permute([]int{1, 0})
	want := [][]int64{{3, 2}, {7, 2}, {9, 1}}
	for i, w := range want {
		if !reflect.DeepEqual(p.Tuple(i), w) {
			t.Errorf("permuted Tuple(%d) = %v, want %v", i, p.Tuple(i), w)
		}
	}
	if r2 := r.Permute([]int{0, 1}); r2 != r {
		t.Error("identity Permute should return the receiver")
	}
}

// TestProbeGapFigure1 walks the paper's running example (Figure 1 and §4.2):
// relation R on (A2, A4, A5).
func TestProbeGapFigure1(t *testing.T) {
	r := buildRel(t, 3,
		[]int64{5, 1, 4}, []int64{5, 1, 7}, []int64{5, 1, 12},
		[]int64{7, 4, 6}, []int64{7, 9, 8}, []int64{7, 9, 13},
		[]int64{10, 4, 1},
	)
	// Free tuple projects to (6,3,7): 6 falls between A2-values 5 and 7 —
	// the paper's constraint <*,*,(5,7),*,*,*,*>.
	gap, found := r.ProbeGap([]int64{6, 3, 7})
	if found {
		t.Fatal("probe (6,3,7) should not be found")
	}
	if gap.Col != 0 || gap.Lo != 5 || gap.Hi != 7 {
		t.Errorf("gap = %+v, want {Col:0 Lo:5 Hi:7}", gap)
	}
	// Projection (7,5,8): A2=7 present, A4=5 falls in band 4 < A4 < 9 —
	// the paper's constraint <*,*,7,*,(4,9),*,*>.
	gap, found = r.ProbeGap([]int64{7, 5, 8})
	if found {
		t.Fatal("probe (7,5,8) should not be found")
	}
	if gap.Col != 1 || gap.Lo != 4 || gap.Hi != 9 {
		t.Errorf("gap = %+v, want {Col:1 Lo:4 Hi:9}", gap)
	}
	// Exact member.
	if _, found := r.ProbeGap([]int64{7, 9, 13}); !found {
		t.Error("probe (7,9,13) should be found")
	}
	// Below the smallest and above the largest value.
	gap, _ = r.ProbeGap([]int64{1, 0, 0})
	if gap.Col != 0 || gap.Lo != NegInf || gap.Hi != 5 {
		t.Errorf("below-min gap = %+v", gap)
	}
	gap, _ = r.ProbeGap([]int64{11, 0, 0})
	if gap.Col != 0 || gap.Lo != 10 || gap.Hi != PosInf {
		t.Errorf("above-max gap = %+v", gap)
	}
	// Last-column gap.
	gap, _ = r.ProbeGap([]int64{5, 1, 8})
	if gap.Col != 2 || gap.Lo != 7 || gap.Hi != 12 {
		t.Errorf("last-column gap = %+v", gap)
	}
}

// randomRelation builds a random relation for property tests.
func randomRelation(rng *rand.Rand, arity, n, domain int) *Relation {
	b := NewBuilder("R", arity)
	tuple := make([]int64, arity)
	for i := 0; i < n; i++ {
		for j := range tuple {
			tuple[j] = int64(rng.Intn(domain))
		}
		b.Add(tuple...)
	}
	return b.Build()
}

// Property: ProbeGap never reports a gap containing a tuple of the relation,
// and membership answers agree with Contains.
func TestProbeGapSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, 1+rng.Intn(3), rng.Intn(40), 8)
		point := make([]int64, r.Arity())
		for trial := 0; trial < 50; trial++ {
			for j := range point {
				point[j] = int64(rng.Intn(10) - 1)
			}
			gap, found := r.ProbeGap(point)
			if found != r.Contains(point) {
				return false
			}
			if found {
				continue
			}
			// Prefix before the gap column must be present; the gap interval
			// must contain the point and no relation value.
			if gap.Lo >= point[gap.Col] || gap.Hi <= point[gap.Col] {
				return false
			}
			lo, hi := r.PrefixRange(point[:gap.Col])
			if gap.Col > 0 && lo == hi {
				return false
			}
			for row := lo; row < hi; row++ {
				v := r.Value(row, gap.Col)
				if v > gap.Lo && v < gap.Hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// collect enumerates the trie depth-first via the iterator interface and
// returns all root-to-leaf tuples.
func collect(it *TrieIterator) [][]int64 {
	var out [][]int64
	var walk func(prefix []int64)
	walk = func(prefix []int64) {
		it.Open()
		for !it.AtEnd() {
			tuple := append(append([]int64(nil), prefix...), it.Key())
			if it.Depth() == it.Relation().Arity() {
				out = append(out, tuple)
			} else {
				walk(tuple)
			}
			it.Next()
		}
		it.Up()
	}
	walk(nil)
	return out
}

func TestTrieIteratorEnumeratesRelation(t *testing.T) {
	r := buildRel(t, 3,
		[]int64{5, 1, 4}, []int64{5, 1, 7}, []int64{5, 1, 12},
		[]int64{7, 4, 6}, []int64{7, 9, 8}, []int64{7, 9, 13},
		[]int64{10, 4, 1},
	)
	got := collect(NewTrieIterator(r))
	if len(got) != r.Len() {
		t.Fatalf("enumerated %d tuples, want %d", len(got), r.Len())
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], r.Tuple(i)) {
			t.Errorf("tuple %d = %v, want %v", i, got[i], r.Tuple(i))
		}
	}
}

// Property: depth-first traversal of the trie iterator reproduces exactly the
// sorted, deduplicated tuple set.
func TestTrieIteratorProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, 1+rng.Intn(4), rng.Intn(60), 6)
		got := collect(NewTrieIterator(r))
		if len(got) != r.Len() {
			return false
		}
		for i := range got {
			if CompareTuples(got[i], r.Tuple(i)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestTrieIteratorSeek(t *testing.T) {
	r := buildRel(t, 1, []int64{1}, []int64{3}, []int64{7}, []int64{9})
	it := NewTrieIterator(r)
	it.Open()
	it.SeekGE(4)
	if it.AtEnd() || it.Key() != 7 {
		t.Fatalf("SeekGE(4) landed at %v", it.Key())
	}
	it.SeekGE(7) // seek to current key: no-op
	if it.Key() != 7 {
		t.Fatalf("SeekGE(7) moved to %v", it.Key())
	}
	it.SeekGE(2) // backward seek: no-op
	if it.Key() != 7 {
		t.Fatalf("backward SeekGE moved to %v", it.Key())
	}
	it.SeekGE(10)
	if !it.AtEnd() {
		t.Error("SeekGE(10) should exhaust the level")
	}
	it.Next() // Next at end: no-op
	if !it.AtEnd() {
		t.Error("Next at end should stay at end")
	}
}

// Property: Seek lands on the least key >= target, matching a reference
// computed from the sorted distinct values.
func TestTrieIteratorSeekProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, 1, 1+rng.Intn(50), 30)
		keys := make([]int64, 0, r.Len())
		for i := 0; i < r.Len(); i++ {
			keys = append(keys, r.Value(i, 0))
		}
		for trial := 0; trial < 30; trial++ {
			target := int64(rng.Intn(35) - 2)
			it := NewTrieIterator(r)
			it.Open()
			it.SeekGE(target)
			idx := sort.Search(len(keys), func(i int) bool { return keys[i] >= target })
			if idx == len(keys) {
				if !it.AtEnd() {
					return false
				}
			} else if it.AtEnd() || it.Key() != keys[idx] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCompareTuples(t *testing.T) {
	cases := []struct {
		a, b []int64
		want int
	}{
		{[]int64{1, 2}, []int64{1, 2}, 0},
		{[]int64{1, 2}, []int64{1, 3}, -1},
		{[]int64{2, 0}, []int64{1, 9}, 1},
	}
	for _, c := range cases {
		if got := CompareTuples(c.a, c.b); got != c.want {
			t.Errorf("CompareTuples(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestTrieIteratorPanics(t *testing.T) {
	r := buildRel(t, 1, []int64{1})
	t.Run("UpAtRoot", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		NewTrieIterator(r).Up()
	})
	t.Run("OpenBelowLeaf", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		it := NewTrieIterator(r)
		it.Open()
		it.Open()
	})
}
