package relation

import (
	"math/rand"
	"reflect"
	"testing"
)

// overlayFixture builds an overlay by applying random insert/delete batches
// on top of a random base, alongside the flat relation holding the same
// merged contents (the reference the overlay must reproduce exactly).
func overlayFixture(t *testing.T, seed int64, arity, n, domain, batches, batchSize int) (*Overlay, *Relation) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	base := randomRelation(rng, arity, n, domain)
	ov := NewOverlay(base)
	live := make(map[string][]int64, base.Len())
	for i := 0; i < base.Len(); i++ {
		tp := append([]int64(nil), base.Tuple(i)...)
		live[TupleKey(tp)] = tp
	}
	tuple := make([]int64, arity)
	for b := 0; b < batches; b++ {
		var ins, dels [][]int64
		touched := make(map[string]bool, batchSize)
		for k := 0; k < batchSize; k++ {
			for j := range tuple {
				tuple[j] = int64(rng.Intn(domain))
			}
			cp := append([]int64(nil), tuple...)
			key := TupleKey(cp)
			if touched[key] {
				continue // keep each batch's sides disjoint (the Apply contract)
			}
			touched[key] = true
			if _, ok := live[key]; ok {
				delete(live, key)
				dels = append(dels, cp)
			} else {
				live[key] = cp
				ins = append(ins, cp)
			}
		}
		ov = ov.Apply(ins, dels)
	}
	b := NewBuilder(base.Name(), arity)
	for _, tp := range live {
		b.Add(tp...)
	}
	return ov, b.Build()
}

// TestOverlayWalkMatchesFlat checks the merged overlay cursor (base minus
// tombstones plus adds) against a flat relation holding the same contents,
// across arities, with the overlay still carrying live logs.
func TestOverlayWalkMatchesFlat(t *testing.T) {
	for _, tc := range []struct{ arity, n, domain int }{
		{1, 200, 120},
		{2, 300, 25},
		{3, 400, 8},
		{4, 400, 6},
	} {
		ov, want := overlayFixture(t, int64(tc.arity*31), tc.arity, tc.n, tc.domain, 6, 5)
		if ov.Len() != want.Len() {
			t.Fatalf("arity %d: overlay Len %d, want %d", tc.arity, ov.Len(), want.Len())
		}
		flat := walk(NewTrieIterator(want), want.Arity())
		got := walk(ov.NewCursor(), ov.Arity())
		if !reflect.DeepEqual(flat, got) {
			t.Errorf("arity %d: overlay walk differs from flat (flat %d visits, overlay %d, log %d)",
				tc.arity, len(flat), len(got), ov.LogLen())
		}
	}
}

// TestOverlaySeekGEMatchesFlat drives the merged SeekGE path, which must
// skip fully deleted base subtrees and interleave the adds log.
func TestOverlaySeekGEMatchesFlat(t *testing.T) {
	ov, want := overlayFixture(t, 7, 3, 500, 20, 8, 6)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		seeks := []int64{int64(rng.Intn(22)), int64(rng.Intn(22)), int64(rng.Intn(22))}
		flat := walkWithSeeks(NewTrieIterator(want), 3, seeks)
		got := walkWithSeeks(ov.NewCursor(), 3, seeks)
		if !reflect.DeepEqual(flat, got) {
			t.Fatalf("seek walk %v: overlay differs from flat", seeks)
		}
	}
}

// TestOverlayProbeGapMatchesFlat pins the merged gap semantics — deleted
// subtrees open gaps, added tuples close them — to the flat reference
// exactly, endpoint for endpoint.
func TestOverlayProbeGapMatchesFlat(t *testing.T) {
	for _, arity := range []int{1, 2, 3} {
		ov, want := overlayFixture(t, int64(40+arity), arity, 300, 9, 6, 5)
		rng := rand.New(rand.NewSource(int64(arity)))
		point := make([]int64, arity)
		for trial := 0; trial < 2000; trial++ {
			for k := range point {
				point[k] = int64(rng.Intn(11)) // domain+2: probes off both ends
			}
			fg, ffound := want.ProbeGap(point)
			og, ofound := ov.ProbeGap(point)
			if ffound != ofound || fg != og {
				t.Fatalf("arity %d point %v: flat (%v, %v) vs overlay (%v, %v)",
					arity, point, fg, ffound, og, ofound)
			}
		}
	}
}

// TestOverlayLogCancellation: re-inserting a deleted tuple and deleting a
// pending insert shrink the logs instead of growing them.
func TestOverlayLogCancellation(t *testing.T) {
	base := FromTuples("R", 2, [][]int64{{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}, {6, 6}, {7, 7}, {8, 8}})
	ov := NewOverlay(base)
	ov = ov.Apply([][]int64{{9, 9}}, [][]int64{{1, 1}})
	if ov.LogLen() != 2 || ov.Len() != 8 {
		t.Fatalf("after batch 1: log %d len %d", ov.LogLen(), ov.Len())
	}
	// Cancel both pending entries.
	ov = ov.Apply([][]int64{{1, 1}}, [][]int64{{9, 9}})
	if ov.LogLen() != 0 || ov.Len() != 8 {
		t.Fatalf("after cancellation: log %d len %d", ov.LogLen(), ov.Len())
	}
	if _, found := ov.ProbeGap([]int64{1, 1}); !found {
		t.Error("re-inserted tuple missing")
	}
	if _, found := ov.ProbeGap([]int64{9, 9}); found {
		t.Error("cancelled insert still present")
	}
}

// TestOverlayCompaction: once the logs pass the threshold the overlay folds
// them into a fresh base and keeps answering identically.
func TestOverlayCompaction(t *testing.T) {
	base := randomRelation(rand.New(rand.NewSource(1)), 2, 40, 40)
	ov := NewOverlay(base)
	var ins [][]int64
	for i := 0; i < overlayCompactMin+8; i++ {
		ins = append(ins, []int64{int64(100 + i), int64(i)})
	}
	ov = ov.Apply(ins, nil)
	if ov.LogLen() != 0 {
		t.Fatalf("log size %d after threshold crossing, want compaction", ov.LogLen())
	}
	if ov.Len() != base.Len()+len(ins) {
		t.Fatalf("post-compaction Len = %d, want %d", ov.Len(), base.Len()+len(ins))
	}
	for _, tuple := range ins {
		if _, found := ov.ProbeGap(tuple); !found {
			t.Fatalf("tuple %v lost in compaction", tuple)
		}
	}
}

// TestOverlayPristineFastPath: an overlay without deltas hands out the plain
// CSR cursor, not the merging one.
func TestOverlayPristineFastPath(t *testing.T) {
	ov := NewOverlay(randomRelation(rand.New(rand.NewSource(2)), 2, 50, 10))
	if _, ok := ov.NewCursor().(*CSRCursor); !ok {
		t.Errorf("pristine overlay cursor is %T, want *CSRCursor", ov.NewCursor())
	}
	ov2 := ov.Apply([][]int64{{99, 99}}, nil)
	if _, ok := ov2.NewCursor().(*OverlayCursor); !ok {
		t.Errorf("dirty overlay cursor is %T, want *OverlayCursor", ov2.NewCursor())
	}
	// Snapshot isolation: the pristine snapshot still answers pre-update.
	if _, found := ov.ProbeGap([]int64{99, 99}); found {
		t.Error("old snapshot sees new tuple")
	}
}

// TestMergeDelta checks the linear three-way merge against a rebuilt
// reference.
func TestMergeDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	r := randomRelation(rng, 2, 200, 20)
	var ins, dels [][]int64
	for i := 0; i < 30; i++ {
		t2 := []int64{int64(rng.Intn(20)), int64(rng.Intn(20))}
		if r.Contains(t2) {
			dels = append(dels, t2)
		} else {
			ins = append(ins, t2)
		}
	}
	insRel := FromTuples("R", 2, ins)
	delsRel := FromTuples("R", 2, dels)
	got := MergeDelta(r, insRel, delsRel)
	b := NewBuilder("R", 2)
	for i := 0; i < r.Len(); i++ {
		if !delsRel.Contains(r.Tuple(i)) {
			b.Add(r.Tuple(i)...)
		}
	}
	for i := 0; i < insRel.Len(); i++ {
		b.Add(insRel.Tuple(i)...)
	}
	want := b.Build()
	if got.Len() != want.Len() {
		t.Fatalf("MergeDelta Len = %d, want %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if CompareTuples(got.Tuple(i), want.Tuple(i)) != 0 {
			t.Fatalf("row %d: got %v want %v", i, got.Tuple(i), want.Tuple(i))
		}
	}
}
