package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/trace"
	"repro/server"
)

// syncBuffer is a goroutine-safe slow-query log sink.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func traceTestStore(t *testing.T) *repro.Store {
	t.Helper()
	st := repro.NewStore()
	if err := st.DefineRelation("edge", 2); err != nil {
		t.Fatal(err)
	}
	edges := [][]int64{{1, 2}, {2, 3}, {3, 1}, {2, 4}, {4, 1}}
	if err := st.Load("edge", edges); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSlowQueryLog pins the slow-query log contract: with a 1ns threshold
// every request crosses it, each offender is one parseable JSON line, and —
// because untraced requests are sampled at 1-in-1 — the line carries the
// span tree and the plan fingerprint.
func TestSlowQueryLog(t *testing.T) {
	ctx := context.Background()
	var log syncBuffer
	srv := server.New(server.Config{
		Stores: map[string]*repro.Store{server.DefaultStore: traceTestStore(t)},
		Trace: server.TraceConfig{
			SlowQuery:    time.Nanosecond,
			SlowQueryLog: &log,
			SampleEvery:  1,
		},
	})
	remote := dial(t, serve(t, srv))

	q, err := remote.ParseQuery("tri", "edge(a, b), edge(b, c), edge(c, a)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := remote.Prepare(q, repro.Options{Algorithm: repro.LFTJ, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Count(ctx); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(log.String()), "\n")
	if len(lines) < 2 { // at least the prepare and the count
		t.Fatalf("slow-query log has %d lines, want >= 2:\n%s", len(lines), log.String())
	}
	var counted struct {
		Type        string             `json:"type"`
		TraceID     uint64             `json:"trace_id"`
		DurMs       float64            `json:"dur_ms"`
		Fingerprint string             `json:"fingerprint"`
		Spans       []trace.SpanRecord `json:"spans"`
	}
	found := false
	for _, line := range lines {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("slow-query line is not JSON: %v\n%s", err, line)
		}
		if probe.Type == "count" {
			if err := json.Unmarshal([]byte(line), &counted); err != nil {
				t.Fatal(err)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no count line in the slow-query log:\n%s", log.String())
	}
	if counted.TraceID == 0 {
		t.Error("sampled slow query has no trace id")
	}
	if counted.DurMs <= 0 {
		t.Errorf("dur_ms = %v, want > 0", counted.DurMs)
	}
	if !strings.Contains(counted.Fingerprint, "edge(a, b)") || !strings.Contains(counted.Fingerprint, "[lftj]") {
		t.Errorf("fingerprint %q missing query text or algorithm", counted.Fingerprint)
	}
	stages := map[string]bool{}
	for _, s := range counted.Spans {
		stages[s.Stage] = true
	}
	if !stages["server.count"] || !stages["engine.count"] {
		t.Errorf("slow count line spans = %v, want server.count + engine.count", stages)
	}
}

// TestClientTraceFetch pins the TTrace round trip: a client-traced request's
// spans are retained server-side and fetched by id, and Traces returns the
// retention buffer.
func TestClientTraceFetch(t *testing.T) {
	ctx := context.Background()
	remote := dial(t, serve(t, server.NewSingle(traceTestStore(t))))

	q, err := remote.ParseQuery("tri", "edge(a, b), edge(b, c), edge(c, a)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := remote.Prepare(q, repro.Options{Algorithm: repro.LFTJ, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	tr := trace.New(trace.NewID())
	root := tr.StartSpan(0, "client.query")
	tctx := trace.NewContext(ctx, root)
	if _, err := p.Count(tctx); err != nil {
		t.Fatal(err)
	}
	// A traced streaming request joins the same trace.
	if _, err := collect(tctx, p.Enumerate); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans, err := remote.Trace(ctx, uint64(tr.ID()))
	if err != nil {
		t.Fatal(err)
	}
	stages := map[string]int{}
	for _, s := range spans {
		if s.Trace != tr.ID() {
			t.Errorf("span %q has trace %d, want %d", s.Stage, s.Trace, tr.ID())
		}
		stages[s.Stage]++
	}
	for _, want := range []string{"server.count", "engine.count", "server.rows", "rows.stream", "engine.enumerate"} {
		if stages[want] == 0 {
			t.Errorf("fetched trace missing stage %q (got %v)", want, stages)
		}
	}
	// The count root parents at the client span that sent it.
	for _, s := range spans {
		if s.Stage == "server.count" && s.Parent != root.ID() {
			t.Errorf("server.count parent = %d, want client root %d", s.Parent, root.ID())
		}
	}

	// The engine.count span carries the Stats-derived attributes.
	foundOutputs := false
	for _, s := range spans {
		if s.Stage == "engine.count" {
			for _, a := range s.Attrs {
				if a.Key == "outputs" {
					foundOutputs = true
				}
			}
		}
	}
	if !foundOutputs {
		t.Error("engine.count span has no outputs attribute")
	}

	// Last-N fetch sees the retained traces.
	datas, err := remote.Traces(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range datas {
		if d.ID == tr.ID() {
			found = true
		}
	}
	if !found {
		t.Errorf("Traces(10) does not include trace %d", tr.ID())
	}

	// An id the server never saw yields an empty span list, not an error —
	// but only after the bounded poll, so use a fresh id and accept the wait.
	if testing.Short() {
		return
	}
	none, err := remote.Trace(ctx, uint64(trace.NewID()))
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("unknown trace id returned %d spans", len(none))
	}
}
