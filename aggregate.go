package repro

import (
	"repro/internal/query"
)

// aggSpec is the compiled streaming-aggregation shape of a query with
// aggregate terms: the engines emit rows grouped by the output prefix
// (group keys first, then the aggregated variables — the planner pins the
// GAO to that prefix), so one output row per group can be folded on the fly
// without materializing anything.
//
// Aggregates follow set semantics over the query result: each fold step sees
// one distinct binding of (group keys, aggregated variables) — the engines'
// early duplicate elimination guarantees distinctness — so count(v) is the
// number of distinct v values per group, and sum(v) adds each distinct value
// once.
type aggSpec struct {
	keys int             // leading group-key columns in each engine row
	cols []int           // engine-row column read by each aggregate
	fns  []query.AggFunc // fold function per aggregate
}

// newAggSpec compiles the aggregation shape, or returns nil for queries
// without aggregate terms.
func newAggSpec(q *Query) *aggSpec {
	if len(q.Aggs) == 0 {
		return nil
	}
	idx := q.VarIndex()
	sp := &aggSpec{
		keys: len(q.Out()),
		cols: make([]int, len(q.Aggs)),
		fns:  make([]query.AggFunc, len(q.Aggs)),
	}
	for i, ag := range q.Aggs {
		sp.cols[i] = idx[ag.Var]
		sp.fns[i] = ag.Func
	}
	return sp
}

// enumerate is a Prepared/Txn-shaped execution: it drives emit with reused
// tuple slices and returns the first error.
type enumerateFn func(emit func([]int64) bool) error

func (sp *aggSpec) initAcc(acc []int64, t []int64) {
	for i, fn := range sp.fns {
		if fn == query.AggCount {
			acc[i] = 1
		} else {
			acc[i] = t[sp.cols[i]]
		}
	}
}

func (sp *aggSpec) foldAcc(acc []int64, t []int64) {
	for i, fn := range sp.fns {
		v := t[sp.cols[i]]
		switch fn {
		case query.AggCount:
			acc[i]++
		case query.AggSum:
			acc[i] += v
		case query.AggMin:
			acc[i] = min(acc[i], v)
		case query.AggMax:
			acc[i] = max(acc[i], v)
		}
	}
}

// run streams the grouped engine rows through the accumulators, emitting one
// [keys..., values...] row per group. Emission stays streaming: a group's
// row is flushed the moment the next group's first engine row (or the end of
// the stream) arrives, and emit returning false stops the underlying
// enumeration.
func (sp *aggSpec) run(enumerate enumerateFn, emit func([]int64) bool) error {
	cur := make([]int64, sp.keys)
	acc := make([]int64, len(sp.fns))
	out := make([]int64, sp.keys+len(sp.fns))
	have := false
	stopped := false
	flush := func() bool {
		copy(out, cur[:sp.keys])
		copy(out[sp.keys:], acc)
		ok := emit(out)
		stopped = !ok
		return ok
	}
	err := enumerate(func(t []int64) bool {
		if have && !sameGroup(cur, t, sp.keys) {
			if !flush() {
				return false
			}
			have = false
		}
		if !have {
			have = true
			copy(cur, t[:sp.keys])
			sp.initAcc(acc, t)
			return true
		}
		sp.foldAcc(acc, t)
		return true
	})
	if err != nil {
		return err
	}
	if have && !stopped {
		flush()
	}
	return nil
}

// count returns the number of groups (= output rows) without building
// accumulator values.
func (sp *aggSpec) count(enumerate enumerateFn) (int64, error) {
	cur := make([]int64, sp.keys)
	have := false
	var n int64
	err := enumerate(func(t []int64) bool {
		if have && sameGroup(cur, t, sp.keys) {
			return true
		}
		have = true
		copy(cur, t[:sp.keys])
		n++
		return true
	})
	return n, err
}

func sameGroup(cur, t []int64, keys int) bool {
	for i := 0; i < keys; i++ {
		if cur[i] != t[i] {
			return false
		}
	}
	return true
}
