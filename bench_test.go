// Benchmarks mirroring the paper's evaluation artifacts, one per table and
// figure, on fixed representative workloads (small synthetic stand-ins so
// `go test -bench=.` completes quickly). The full parameter sweeps that
// print the paper-shaped tables live in cmd/benchtables; these benchmarks
// exercise the same code paths through testing.B so regressions show up in
// ns/op and allocs/op.
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/incremental"
	"repro/internal/query"
	"repro/internal/trace"
)

var benchGraphs = map[string]*Graph{}

func benchGraph(b *testing.B, model dataset.Model, nodes, edges int, sel int) *Graph {
	b.Helper()
	key := fmt.Sprintf("%v-%d-%d-%d", model, nodes, edges, sel)
	if g, ok := benchGraphs[key]; ok {
		return g
	}
	g := GenerateGraph(model, nodes, edges, 42)
	g.SetSelectivity(sel, 7)
	benchGraphs[key] = g
	return g
}

func benchCount(b *testing.B, g *Graph, q *Query, opts Options) {
	b.Helper()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Count(ctx, g, q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_IdeaAblation measures Minesweeper on 3-path with the
// Idea 4/6 ablation variants (Table 1's speedup numerator and denominators).
func BenchmarkTable1_IdeaAblation(b *testing.B) {
	g := benchGraph(b, dataset.HolmeKim, 5000, 29000, 10)
	q := Paths(3)
	for _, v := range []struct {
		name string
		opts Options
	}{
		{"noIdeas", Options{Algorithm: "ms", Workers: 1, DisableProbeMemo: true, DisableComplete: true, DisableCountReuse: true}},
		{"idea4", Options{Algorithm: "ms", Workers: 1, DisableComplete: true, DisableCountReuse: true}},
		{"ideas4and6", Options{Algorithm: "ms", Workers: 1, DisableCountReuse: true}},
	} {
		b.Run(v.name, func(b *testing.B) { benchCount(b, g, q, v.opts) })
	}
}

// BenchmarkTable2_LowSelectivity is the Table 2 regime: Ideas 4&6 at
// selectivity 10 on 2-comb.
func BenchmarkTable2_LowSelectivity(b *testing.B) {
	g := benchGraph(b, dataset.HolmeKim, 5000, 29000, 10)
	q := Comb()
	b.Run("noIdeas", func(b *testing.B) {
		benchCount(b, g, q, Options{Algorithm: "ms", Workers: 1, DisableProbeMemo: true, DisableComplete: true, DisableCountReuse: true})
	})
	b.Run("ideas4and6", func(b *testing.B) {
		benchCount(b, g, q, Options{Algorithm: "ms", Workers: 1, DisableCountReuse: true})
	})
}

// BenchmarkTable3_SkeletonAblation measures Idea 7 on the triangle query.
func BenchmarkTable3_SkeletonAblation(b *testing.B) {
	g := benchGraph(b, dataset.ErdosRenyi, 10000, 40000, 1)
	q := Cliques(3)
	b.Run("noSkeleton", func(b *testing.B) {
		benchCount(b, g, q, Options{Algorithm: "ms", Workers: 1, DisableSkeleton: true})
	})
	b.Run("skeleton", func(b *testing.B) {
		benchCount(b, g, q, Options{Algorithm: "ms", Workers: 1})
	})
}

// BenchmarkTable4_GAO measures Minesweeper on 4-path under the best NEO
// order and a non-NEO order (Table 4's contrast).
func BenchmarkTable4_GAO(b *testing.B) {
	g := benchGraph(b, dataset.ErdosRenyi, 5000, 15000, 10)
	q := Paths(4)
	b.Run("neoABCDE", func(b *testing.B) {
		benchCount(b, g, q, Options{Algorithm: "ms", Workers: 1, GAO: []string{"a", "b", "c", "d", "e"}})
	})
	b.Run("nonNeoABDCE", func(b *testing.B) {
		benchCount(b, g, q, Options{Algorithm: "ms", Workers: 1, GAO: []string{"a", "b", "d", "c", "e"}})
	})
}

// BenchmarkTable5_Granularity measures parallel Minesweeper on the triangle
// query across the paper's partition granularities.
func BenchmarkTable5_Granularity(b *testing.B) {
	g := benchGraph(b, dataset.HolmeKim, 5000, 29000, 1)
	q := Cliques(3)
	for _, f := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("f=%d", f), func(b *testing.B) {
			benchCount(b, g, q, Options{Algorithm: "ms", Granularity: f})
		})
	}
}

// BenchmarkTable6_CyclicEngines measures every engine on the 3-clique query
// (one Table 6 column).
func BenchmarkTable6_CyclicEngines(b *testing.B) {
	g := benchGraph(b, dataset.HolmeKim, 5000, 29000, 1)
	q := Cliques(3)
	for _, alg := range []Algorithm{LFTJ, MS, PSQL, MonetDB, GraphLab} {
		b.Run(string(alg), func(b *testing.B) { benchCount(b, g, q, Options{Algorithm: alg, Workers: 1}) })
	}
}

// BenchmarkTable7_AcyclicEngines measures the acyclic-query engines on
// 3-path at selectivity 80 (one Table 7 column).
func BenchmarkTable7_AcyclicEngines(b *testing.B) {
	g := benchGraph(b, dataset.BarabasiAlbert, 5000, 29000, 80)
	q := Paths(3)
	for _, alg := range []Algorithm{LFTJ, MS, Yannakakis, PSQL, MonetDB} {
		b.Run(string(alg), func(b *testing.B) { benchCount(b, g, q, Options{Algorithm: alg, Workers: 1}) })
	}
}

// BenchmarkTable7_Lollipop measures the §4.12 hybrid against its parents on
// 2-lollipop.
func BenchmarkTable7_Lollipop(b *testing.B) {
	g := benchGraph(b, dataset.BarabasiAlbert, 3000, 12000, 10)
	q := Lollipops(2)
	for _, alg := range []Algorithm{MS, Hybrid} {
		b.Run(string(alg), func(b *testing.B) { benchCount(b, g, q, Options{Algorithm: alg, Workers: 1}) })
	}
}

// BenchmarkFigure3to5_PathSampleScaling measures the 3-path engines at two
// sample sizes (the Figures 3–5 x-axis endpoints).
func BenchmarkFigure3to5_PathSampleScaling(b *testing.B) {
	g := benchGraph(b, dataset.BarabasiAlbert, 20000, 120000, 1)
	for _, n := range []int{10, 300} {
		v1 := make([]int64, n)
		v2 := make([]int64, n)
		for i := 0; i < n; i++ {
			v1[i] = int64(i * 7 % 20000)
			v2[i] = int64(i*13%20000 + 1)
		}
		g.SetSamples(v1, v2)
		for _, alg := range []Algorithm{LFTJ, MS} {
			b.Run(fmt.Sprintf("N=%d/%s", n, alg), func(b *testing.B) {
				benchCount(b, g, Paths(3), Options{Algorithm: alg, Workers: 1})
			})
		}
	}
}

// BenchmarkFigure6_TriangleEdgeScaling measures 3-clique at two edge scales
// (the Figure 6 x-axis).
func BenchmarkFigure6_TriangleEdgeScaling(b *testing.B) {
	for _, edges := range []int{20000, 80000} {
		g := benchGraph(b, dataset.BarabasiAlbert, 20000, edges, 1)
		for _, alg := range []Algorithm{LFTJ, MS, PSQL} {
			b.Run(fmt.Sprintf("E=%d/%s", edges, alg), func(b *testing.B) {
				benchCount(b, g, Cliques(3), Options{Algorithm: alg, Workers: 1})
			})
		}
	}
}

// BenchmarkFigure7_FourCliqueEdgeScaling measures 4-clique at two edge
// scales (the Figure 7 x-axis).
func BenchmarkFigure7_FourCliqueEdgeScaling(b *testing.B) {
	for _, edges := range []int{20000, 60000} {
		g := benchGraph(b, dataset.BarabasiAlbert, 20000, edges, 1)
		for _, alg := range []Algorithm{LFTJ, MS} {
			b.Run(fmt.Sprintf("E=%d/%s", edges, alg), func(b *testing.B) {
				benchCount(b, g, Cliques(4), Options{Algorithm: alg, Workers: 1})
			})
		}
	}
}

// BenchmarkCountReuse isolates the #Minesweeper-style count-mode subtree
// reuse (Idea 8) on a low-selectivity 4-path — the paper's headline
// Minesweeper advantage.
func BenchmarkCountReuse(b *testing.B) {
	g := benchGraph(b, dataset.BarabasiAlbert, 3000, 15000, 10)
	q := Paths(4)
	b.Run("withReuse", func(b *testing.B) {
		benchCount(b, g, q, Options{Algorithm: "ms", Workers: 1})
	})
	b.Run("withoutReuse", func(b *testing.B) {
		benchCount(b, g, q, Options{Algorithm: "ms", Workers: 1, DisableCountReuse: true})
	})
}

// BenchmarkPreparedReuse is the prepared-API acceptance benchmark: the
// point-query serving regime (small per-execution work, heavy repetition —
// the paper's LogicBlox setting) where compiling once and executing many
// times beats re-entering the per-call pipeline on every request.
func BenchmarkPreparedReuse(b *testing.B) {
	ctx := context.Background()
	g := benchGraph(b, dataset.ErdosRenyi, 100, 300, 10)
	g.SetSamples([]int64{2, 3, 5}, []int64{7, 11, 13})
	q := Paths(3)
	opts := Options{Algorithm: "lftj", Workers: 1}
	b.Run("percall", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Count(ctx, g, q, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		p, err := g.Prepare(q, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Count(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTracingOverhead pins the disabled-tracing cost on the prepared
// hot path: "untraced" runs the exact serving loop of
// BenchmarkPreparedReuse/prepared (the engine-span hook reduced to one
// context lookup and a nil check) and must stay within noise of it;
// "traced" prices the enabled path (span allocation, stats delta, buffer
// append) for comparison.
func BenchmarkTracingOverhead(b *testing.B) {
	ctx := context.Background()
	g := benchGraph(b, dataset.ErdosRenyi, 100, 300, 10)
	g.SetSamples([]int64{2, 3, 5}, []int64{7, 11, 13})
	p, err := g.Prepare(Paths(3), Options{Algorithm: "lftj", Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("untraced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.Count(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		tr := trace.New(trace.NewID())
		root := tr.StartSpan(0, "bench")
		tctx := trace.NewContext(ctx, root)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Count(tctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBackend contrasts the two index backends on the worst-case-
// optimal hot path: triangle and 4-clique counting with prepared plans, so
// the measured loop is pure join execution. The CSR backend materializes
// each trie level once at Prepare time; flat re-derives child ranges by
// binary search on every cursor operation.
func BenchmarkBackend(b *testing.B) {
	ctx := context.Background()
	g := benchGraph(b, dataset.HolmeKim, 5000, 29000, 1)
	for _, q := range []*Query{Cliques(3), Cliques(4)} {
		for _, backend := range []Backend{BackendFlat, BackendCSR, BackendCSRSharded} {
			p, err := g.Prepare(q, Options{Algorithm: "lftj", Workers: 1, Backend: backend})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", q.Name, backend), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := p.Count(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBackendParallel is the csr-sharded acceptance benchmark: the
// §4.10 parallel clique count, csr (shared index, per-execution value-split
// jobs) against csr-sharded (jobs mapped one-to-one onto physically
// disjoint shards). The sharded gains come from two places: job derivation
// reads precomputed shard boundaries instead of scanning the smallest
// relation's distinct values on every Count, and on multi-core hardware the
// workers touch disjoint index arrays (no shared cache-line traffic).
func BenchmarkBackendParallel(b *testing.B) {
	ctx := context.Background()
	g := benchGraph(b, dataset.HolmeKim, 20000, 120000, 1)
	for _, q := range []*Query{Cliques(3), Cliques(4)} {
		for _, backend := range []Backend{BackendCSR, BackendCSRSharded} {
			p, err := g.Prepare(q, Options{Algorithm: "lftj", Workers: 4, Backend: backend})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", q.Name, backend), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := p.Count(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkViewMaintenance contrasts pure incremental-view upkeep across
// backends: one small ApplyEdges batch per iteration. On the csr backend
// the batch lands in the cached indexes' delta overlays instead of forcing
// an O(arity·n) trie rebuild (see BenchmarkOverlayApply vs
// BenchmarkCSRBuild100k for that contrast in isolation); upkeep lands
// within ~15% of the flat reference, and the payoff is that every read
// between batches runs on the fast backend — BenchmarkViewMaintainAndServe
// measures that regime.
func BenchmarkViewMaintenance(b *testing.B) {
	ctx := context.Background()
	for _, backend := range []Backend{BackendFlat, BackendCSR} {
		b.Run(string(backend), func(b *testing.B) {
			g := GenerateGraph(BarabasiAlbert, 3000, 15000, 42)
			v, err := incremental.NewGraphViewBackend(ctx, Triangles(), g.DB(), core.Backend(backend))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := int64(i % 2999)
				if err := v.ApplyEdges(ctx, [][2]int64{{u, u + 1}}, [][2]int64{{u + 1, u + 2}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkViewMaintainAndServe is the serving regime the csr default is
// chosen for: each iteration applies one edge batch and then answers five
// prepared pattern counts on the updated graph (re-preparing per batch —
// a plan-cache hit on csr, whose indexes advance in place; a recompile on
// flat, whose plans the update invalidated).
func BenchmarkViewMaintainAndServe(b *testing.B) {
	ctx := context.Background()
	for _, backend := range []Backend{BackendFlat, BackendCSR} {
		b.Run(string(backend), func(b *testing.B) {
			g := GenerateGraph(BarabasiAlbert, 3000, 15000, 42)
			v, err := incremental.NewGraphViewBackend(ctx, Triangles(), g.DB(), core.Backend(backend))
			if err != nil {
				b.Fatal(err)
			}
			q := Cliques(3)
			opts := Options{Algorithm: "lftj", Workers: 1, Backend: backend}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := int64(i % 2999)
				if err := v.ApplyEdges(ctx, [][2]int64{{u, u + 1}}, [][2]int64{{u + 1, u + 2}}); err != nil {
					b.Fatal(err)
				}
				p, err := g.Prepare(q, opts)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < 5; j++ {
					if _, err := p.Count(ctx); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkBackendProbes contrasts the backends under Minesweeper's gap-
// probe access pattern (LUB/GLB probes instead of leapfrog seeks).
func BenchmarkBackendProbes(b *testing.B) {
	ctx := context.Background()
	g := benchGraph(b, dataset.HolmeKim, 5000, 29000, 1)
	q := Cliques(3)
	for _, backend := range []Backend{BackendFlat, BackendCSR, BackendCSRSharded} {
		p, err := g.Prepare(q, Options{Algorithm: "ms", Workers: 1, Backend: backend})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(backend), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Count(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAGMBound measures the fractional-edge-cover LP solve.
func BenchmarkAGMBound(b *testing.B) {
	g := benchGraph(b, dataset.BarabasiAlbert, 1000, 5000, 1)
	queries := []*query.Query{query.Clique(3), query.Clique(4), query.Lollipop(3)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := AGMBound(g, q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkParallelSpeedup contrasts sequential and parallel LFTJ on the
// triangle query (§4.10).
func BenchmarkParallelSpeedup(b *testing.B) {
	g := benchGraph(b, dataset.HolmeKim, 20000, 120000, 1)
	q := Cliques(3)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchCount(b, g, q, Options{Algorithm: "lftj", Workers: w, Granularity: 8})
		})
	}
}

// BenchmarkWCOJImplementations is the implementation ablation DESIGN.md
// calls out: the same worst-case-optimal computation via leapfrogging
// sorted iterators (lftj) vs the paper's recursive Algorithm 1 formulation
// (genericjoin) vs Minesweeper's gap-driven search (ms).
func BenchmarkWCOJImplementations(b *testing.B) {
	g := benchGraph(b, dataset.HolmeKim, 5000, 29000, 1)
	q := Cliques(3)
	for _, alg := range []Algorithm{LFTJ, GenericJoin, MS} {
		b.Run(string(alg), func(b *testing.B) { benchCount(b, g, q, Options{Algorithm: alg, Workers: 1}) })
	}
}

// BenchmarkStoreBatch is the batched-execution acceptance benchmark: the
// same mixed query workload executed sequentially on one goroutine versus
// through Store.Batch with a worker budget, all against one shared snapshot.
// One batch "op" runs the full request list; batched throughput must be at
// least sequential throughput once two or more workers (and cores) are
// available — on a single-core box the two are expected to land at parity,
// which bounds the batch machinery's overhead.
func BenchmarkStoreBatch(b *testing.B) {
	ctx := context.Background()
	g := benchGraph(b, dataset.HolmeKim, 250, 900, 25)
	s := g.Store()
	var reqs []Request
	for _, q := range corpusQueries() {
		p, err := s.Prepare(q, Options{Algorithm: LFTJ, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		reqs = append(reqs, Request{Prepared: p})
	}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range reqs {
				if _, err := r.Prepared.Count(ctx); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("batch%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, res := range s.BatchWorkers(ctx, reqs, workers) {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
		})
	}
}

// BenchmarkPushdown measures the tentpole payoff of constant pushdown: a
// highly selective constant atom ("edge(K, b), edge(b, c)") executed with
// the constant compiled into the trie cursors' seek bounds, against the
// same logical query executed as the plain two-hop join with the constant
// checked in the consumer callback. The pushdown variant must win by at
// least 2x — it seeks straight to the K subtree instead of enumerating the
// whole join.
func BenchmarkPushdown(b *testing.B) {
	ctx := context.Background()
	g := benchGraph(b, dataset.BarabasiAlbert, 5000, 40000, 1)
	s := g.Store()
	const k = 137
	pushQ, err := s.ParseQuery("push", fmt.Sprintf("out(b, c) :- edge(%d, b), edge(b, c)", k))
	if err != nil {
		b.Fatal(err)
	}
	push, err := s.Prepare(pushQ, Options{Algorithm: LFTJ, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	plainQ, err := s.ParseQuery("plain", "edge(a, b), edge(b, c)")
	if err != nil {
		b.Fatal(err)
	}
	plain, err := s.Prepare(plainQ, Options{Algorithm: LFTJ, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	var wantRows int64
	b.Run("pushdown", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var n int64
			if err := push.Enumerate(ctx, func([]int64) bool { n++; return true }); err != nil {
				b.Fatal(err)
			}
			wantRows = n
		}
	})
	b.Run("postfilter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var n int64
			if err := plain.Enumerate(ctx, func(t []int64) bool {
				if t[0] == k {
					n++
				}
				return true
			}); err != nil {
				b.Fatal(err)
			}
			if wantRows != 0 && n != wantRows {
				b.Fatalf("post-filter saw %d rows, pushdown %d", n, wantRows)
			}
		}
	})
}
