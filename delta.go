package repro

import (
	"sort"

	"repro/internal/core"
)

// Delta is one tuple-level change in a write batch: an insertion by default,
// a deletion when Delete is set. Build them with Insert and Remove.
type Delta struct {
	// Tuple is the affected tuple; its width must match the relation's
	// declared arity and its values must lie in the storage domain.
	Tuple []int64
	// Delete marks the tuple for removal; the zero value inserts.
	Delete bool
}

// Insert returns a Delta inserting the given tuple.
func Insert(tuple ...int64) Delta { return Delta{Tuple: tuple} }

// Remove returns a Delta deleting the given tuple.
func Remove(tuple ...int64) Delta { return Delta{Tuple: tuple, Delete: true} }

// ApplyAll applies update batches to several relations as one atomic write:
// all batches land under a single database lock acquisition
// (core.DB.ApplyDeltas), so no concurrent reader — in particular no
// ReadTxn/Batch snapshot — can observe some relations updated and others not.
// This is the write-transaction counterpart of Apply for schemas whose
// invariants span relations (Graph.ApplyEdges keeps "edge" and "fwd" in step
// through the same mechanism).
//
// Per relation the semantics match Apply: inserts already present and deletes
// absent are ignored, and a tuple appearing as both an insert and a delete in
// one batch resolves as delete-after-insert. Every batch is schema-checked up
// front — unknown relations (ErrUnknownRelation), arity mismatches
// (ErrArityMismatch), and out-of-domain values (ErrValueOutOfRange) fail the
// whole call before anything is applied. Like Apply, the write routes through
// the delta path, so compiled plans on the default CSR backend stay valid and
// keep serving current data.
func (s *Store) ApplyAll(batches map[string][]Delta) error {
	names := make([]string, 0, len(batches))
	for name := range batches {
		names = append(names, name)
	}
	sort.Strings(names)
	checked := make([]core.DeltaBatch, 0, len(names))
	for _, name := range names {
		b, err := s.deltaBatch(name, batches[name])
		if err != nil {
			return err
		}
		checked = append(checked, b)
	}
	return s.applyDeltas(checked)
}

// deltaBatch schema-checks one relation's deltas and splits them into the
// insert/delete lists the core write path takes.
func (s *Store) deltaBatch(name string, deltas []Delta) (core.DeltaBatch, error) {
	arity, err := s.Arity(name)
	if err != nil {
		return core.DeltaBatch{}, err
	}
	b := core.DeltaBatch{Name: name}
	for _, d := range deltas {
		op := "insert"
		if d.Delete {
			op = "delete"
		}
		if err := checkDomain(op, name, arity, d.Tuple); err != nil {
			return core.DeltaBatch{}, err
		}
		if d.Delete {
			b.Deletes = append(b.Deletes, d.Tuple)
		} else {
			b.Inserts = append(b.Inserts, d.Tuple)
		}
	}
	return b, nil
}
