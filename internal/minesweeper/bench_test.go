package minesweeper

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/testutil"
)

func BenchmarkInsertInterval(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nd := newNode(0, nil, 0, false)
		for j := 0; j < 1000; j++ {
			l := int64(rng.Intn(100_000))
			nd.insertInterval(l, l+int64(rng.Intn(50)))
		}
	}
}

func BenchmarkNodeNext(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	nd := newNode(0, nil, 0, false)
	for j := 0; j < 1000; j++ {
		l := int64(rng.Intn(100_000))
		nd.insertInterval(l, l+int64(rng.Intn(50)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nd.next(int64(i % 100_000))
	}
}

func BenchmarkTriangleCount(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	db := testutil.RandomGraphDB(rng, 2000, 12000, 1)
	q := query.Clique(3)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Engine{}).Count(ctx, q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathCountWithReuse(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	db := testutil.RandomGraphDB(rng, 2000, 12000, 5)
	q := query.Path(3)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Engine{}).Count(ctx, q, db); err != nil {
			b.Fatal(err)
		}
	}
}
