package minesweeper

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/testutil"
)

func TestStatsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	db := testutil.RandomGraphDB(rng, 20, 80, 2)
	q := query.Path(3)

	var with Stats
	n1, err := Engine{Opts: Options{Stats: &with}}.Count(context.Background(), q, db)
	if err != nil {
		t.Fatal(err)
	}
	if with.Outputs != n1 {
		t.Errorf("Outputs = %d, want %d", with.Outputs, n1)
	}
	if with.Probes == 0 || with.Constraints == 0 || with.FreeTupleSteps == 0 {
		t.Errorf("zero activity counters: %+v", with)
	}
	if with.ProbeMemoHits == 0 {
		t.Errorf("Idea 4 memo never hit on a path query: %+v", with)
	}
	if with.MemoStores == 0 {
		t.Errorf("count-mode reuse never stored: %+v", with)
	}

	// Disabling Idea 4 must eliminate memo hits and issue at least as many
	// probes.
	var noMemo Stats
	n2, err := Engine{Opts: Options{DisableMemo: true, Stats: &noMemo}}.Count(context.Background(), q, db)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Fatalf("counts differ: %d vs %d", n1, n2)
	}
	if noMemo.ProbeMemoHits != 0 {
		t.Errorf("DisableMemo but ProbeMemoHits = %d", noMemo.ProbeMemoHits)
	}
	if noMemo.Probes < with.Probes {
		t.Errorf("without the memo the engine should probe at least as much: %d < %d", noMemo.Probes, with.Probes)
	}

	// Disabling count reuse must eliminate reuse hits.
	var noReuse Stats
	if _, err := (Engine{Opts: Options{DisableCountMemo: true, Stats: &noReuse}}).Count(context.Background(), q, db); err != nil {
		t.Fatal(err)
	}
	if noReuse.ReuseHits != 0 || noReuse.MemoStores != 0 {
		t.Errorf("DisableCountMemo but reuse counters = %+v", noReuse)
	}
}

func TestStatsAccumulateAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	db := testutil.RandomGraphDB(rng, 10, 30, 2)
	var s Stats
	e := Engine{Opts: Options{Stats: &s}}
	if _, err := e.Count(context.Background(), query.Clique(3), db); err != nil {
		t.Fatal(err)
	}
	first := s
	if _, err := e.Count(context.Background(), query.Clique(3), db); err != nil {
		t.Fatal(err)
	}
	if s.Probes <= first.Probes || s.FreeTupleSteps <= first.FreeTupleSteps {
		t.Errorf("stats should accumulate: first=%+v total=%+v", first, s)
	}
}
