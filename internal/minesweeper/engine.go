package minesweeper

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/query"
	"repro/internal/relation"
)

// Range restricts the first GAO variable to [Lo, Hi) for the §4.10 parallel
// partitioning.
type Range struct {
	Lo, Hi int64
}

// Options toggle the paper's implementation ideas; every idea defaults to
// enabled so the ablation benchmarks (Tables 1–3) switch them off.
type Options struct {
	// GAO overrides the automatically selected global attribute order
	// (Table 4 runs Minesweeper under explicit orders).
	GAO []string
	// Backend selects the index backend for the unplanned path (empty means
	// core.DefaultBackend); a compiled Plan carries its own backend.
	Backend core.Backend
	// DisableMemo turns off Idea 4 (avoid repeated seekGap calls).
	DisableMemo bool
	// DisableComplete turns off Idea 6 (complete nodes).
	DisableComplete bool
	// DisableSkeleton turns off Idea 7; β-cyclic queries then insert gap
	// constraints from every atom and the CDS falls back to cache-free
	// fixpoint iteration wherever chains break.
	DisableSkeleton bool
	// DisableCountMemo turns off the #Minesweeper-style count-mode subtree
	// reuse (Idea 8; see DESIGN.md §4).
	DisableCountMemo bool
	// FirstVarRange restricts the first GAO variable for parallel jobs.
	FirstVarRange *Range
	// Stats, when non-nil, accumulates execution counters. It is not safe
	// for concurrent executions; prefer Collector for those.
	Stats *Stats
	// Plan, when set, is a compiled plan for the query: validation, GAO and
	// skeleton resolution, and index binding are skipped and the plan's
	// bound indexes are executed directly.
	Plan *core.Plan
	// Collector, when non-nil, receives this run's counters on the unified
	// core stats surface. Safe for concurrent executions.
	Collector *core.StatsCollector
}

// Engine is the Minesweeper engine.
type Engine struct {
	Opts Options
}

// Name implements core.Engine.
func (Engine) Name() string { return "ms" }

// Count implements core.Engine. Count mode uses #Minesweeper-style subtree
// reuse unless disabled.
func (e Engine) Count(ctx context.Context, q *query.Query, db *core.DB) (int64, error) {
	return e.run(ctx, q, db, nil)
}

// Enumerate implements core.Engine.
func (e Engine) Enumerate(ctx context.Context, q *query.Query, db *core.DB, emit func([]int64) bool) error {
	if emit == nil {
		return fmt.Errorf("minesweeper: nil emit")
	}
	_, err := e.run(ctx, q, db, emit)
	return err
}

type exec struct {
	n       int
	atoms   []core.AtomIndex
	inSkel  []bool
	cds     *CDS
	probes  []probeMemo
	scratch []int64
	tick    *core.Ticker
	emit    func([]int64) bool
	outPerm []int
	out     []int64
	counter *counter
	opts    Options
	push    *core.Pushdown
	prefix  int // >0: emit only the leading prefix columns, deduped
	total   int64
	stats   Stats
}

func (e Engine) run(ctx context.Context, q *query.Query, db *core.DB, emit func([]int64) bool) (int64, error) {
	var gao []string
	var inSkel []bool
	var atoms []core.AtomIndex
	var push *core.Pushdown
	if p := e.Opts.Plan; p != nil {
		gao, atoms, push = p.GAO, p.Atoms, p.Push
		inSkel = p.InSkel
		if inSkel == nil {
			inSkel = make([]bool, len(q.Atoms))
			for i := range inSkel {
				inSkel[i] = true
			}
		}
	} else {
		if err := q.Validate(); err != nil {
			return 0, err
		}
		opts := e.Opts
		if q.PrefixOrdered() && opts.GAO == nil {
			// Projected/aggregate queries must enumerate grouped by the
			// output prefix: pin the GAO to the query's own variable order
			// instead of the hypergraph-chosen one.
			opts.GAO = q.Vars()
		}
		var err error
		gao, inSkel, _, err = resolvePlan(q, opts)
		if err != nil {
			return 0, err
		}
		atoms, err = core.BindAtoms(q, db, gao, e.Opts.Backend)
		if err != nil {
			return 0, err
		}
		push, err = core.CompilePushdown(q, gao)
		if err != nil {
			return 0, err
		}
	}
	maxArity := 0
	for i, a := range atoms {
		if a.Index.Arity() != len(q.Atoms[i].Vars) {
			return 0, fmt.Errorf("minesweeper: atom %s arity mismatch with its %d-ary index", q.Atoms[i], a.Index.Arity())
		}
		if a.Index.Arity() > maxArity {
			maxArity = a.Index.Arity()
		}
	}
	// Pin overlay-backed indexes to one snapshot for this whole run, so a
	// concurrent DB.ApplyDelta can never mix two index states between
	// probes (the CDS would otherwise accumulate gaps from different
	// database states).
	atoms = core.SnapshotAtoms(atoms)
	if r := e.Opts.FirstVarRange; r != nil {
		// §4.10 parallel job: bind atoms leading on the first GAO attribute
		// to just the shards covering this job's range (disjoint physical
		// indexes per worker). Gap probes against the restricted view are
		// exact for every free tuple inside the job's range.
		atoms = core.RestrictAtoms(atoms, r.Lo, r.Hi)
	}
	ex := &exec{
		n:       len(gao),
		atoms:   atoms,
		inSkel:  inSkel,
		cds:     NewCDS(len(gao), e.Opts.DisableComplete),
		probes:  make([]probeMemo, len(atoms)),
		scratch: make([]int64, maxArity),
		tick:    core.NewTicker(ctx),
		emit:    emit,
		opts:    e.Opts,
		push:    push,
	}
	if push != nil {
		ex.prefix = push.Prefix
	}
	idx := q.VarIndex()
	ex.outPerm = make([]int, len(gao))
	for g, v := range gao {
		ex.outPerm[g] = idx[v]
	}
	if r := e.Opts.FirstVarRange; r != nil {
		if r.Lo > -1 {
			ex.cds.t[0] = r.Lo
		}
		if r.Hi < posInf {
			ex.cds.InsConstraint(Constraint{Col: 0, Lo: r.Hi - 1, Hi: posInf})
		}
	}
	if push != nil {
		// Seed the CDS with the compiled seek bounds: a lower bound lo at
		// column c covers [-1, lo-1], an upper bound hi covers [hi, +inf).
		// ComputeFreeTuple then never proposes a value outside [lo, hi), so
		// the gap probes start inside the admissible band — the Minesweeper
		// form of cursor pushdown.
		for c, b := range push.Bounds {
			if b.Lo > 0 {
				ex.cds.InsConstraint(Constraint{Col: c, Lo: -2, Hi: b.Lo})
			}
			if b.Hi < posInf {
				ex.cds.InsConstraint(Constraint{Col: c, Lo: b.Hi - 1, Hi: posInf})
			}
		}
	}
	ex.cds.Tick = ex.tick.Tick
	// The count-mode subtree reuse assumes plain full-binding semantics;
	// residual predicates and projection dedup both break its memo, so
	// extended queries always take the exact path.
	if emit == nil && !e.Opts.DisableCountMemo && push == nil {
		ex.counter = newCounter(ex, q, gao)
	}
	err := ex.loop()
	ex.stats.FreeTupleSteps = int64(ex.cds.Steps())
	ex.stats.Outputs = ex.total
	if e.Opts.Stats != nil {
		e.Opts.Stats.add(ex.stats)
	}
	if sc := e.Opts.Collector; sc != nil {
		sc.Add(core.Stats{
			Outputs:        ex.stats.Outputs,
			Probes:         ex.stats.Probes,
			ProbeMemoHits:  ex.stats.ProbeMemoHits,
			Constraints:    ex.stats.Constraints,
			FreeTupleSteps: ex.stats.FreeTupleSteps,
			ReuseHits:      ex.stats.ReuseHits,
			MemoStores:     ex.stats.MemoStores,
		})
	}
	if err != nil {
		return 0, err
	}
	return ex.total, nil
}

// ResolvePlan picks the GAO and skeleton (§4.8, §4.9) without executing:
// the compilation half of the engine, exposed so prepared-query compilation
// can run it exactly once and pin the result. betaCyclic reports whether the
// query needed a proper skeleton split.
func ResolvePlan(q *query.Query, opts Options) (gao []string, inSkel []bool, betaCyclic bool, err error) {
	return resolvePlan(q, opts)
}

// resolvePlan picks the GAO and skeleton (§4.8, §4.9). A user-provided GAO
// keeps all atoms in the skeleton when it satisfies the chain condition or
// when the query is β-acyclic anyway (Table 4 runs non-NEO orders through
// the cache-free fallback); for β-cyclic queries a greedy chain-valid subset
// is used unless Idea 7 is disabled.
func resolvePlan(q *query.Query, opts Options) (gao []string, inSkel []bool, betaCyclic bool, err error) {
	all := func() []bool {
		s := make([]bool, len(q.Atoms))
		for i := range s {
			s[i] = true
		}
		return s
	}
	if opts.GAO == nil {
		plan, err := hypergraph.PlanQuery(q)
		if err != nil {
			return nil, nil, false, err
		}
		if opts.DisableSkeleton || !plan.BetaCyclic {
			return plan.GAO, all(), plan.BetaCyclic, nil
		}
		inSkel = make([]bool, len(q.Atoms))
		for _, i := range plan.Skeleton {
			inSkel[i] = true
		}
		return plan.GAO, inSkel, true, nil
	}
	gao = opts.GAO
	if len(gao) != q.NumVars() {
		return nil, nil, false, fmt.Errorf("minesweeper: GAO %v does not cover the %d query variables: %w", gao, q.NumVars(), core.ErrUnboundVar)
	}
	seen := make(map[string]bool, len(gao))
	for _, v := range gao {
		seen[v] = true
	}
	for _, v := range q.Vars() {
		if !seen[v] {
			return nil, nil, false, fmt.Errorf("minesweeper: GAO %v misses variable %q: %w", gao, v, core.ErrUnboundVar)
		}
	}
	_, betaAcyclic := hypergraph.FindChainGAO(q.Vars(), q.Atoms)
	if opts.DisableSkeleton || hypergraph.IsChainGAO(gao, q.Atoms) {
		return gao, all(), !betaAcyclic, nil
	}
	if betaAcyclic {
		// β-acyclic query under a non-NEO order: constraints from every atom,
		// with cache-free fixpoints where chains break.
		return gao, all(), false, nil
	}
	inSkel = make([]bool, len(q.Atoms))
	var kept []query.Atom
	for i, a := range q.Atoms {
		trial := append(append([]query.Atom(nil), kept...), a)
		if hypergraph.IsChainGAO(gao, trial) {
			kept = trial
			inSkel[i] = true
		}
	}
	return gao, inSkel, true, nil
}

// loop is Minesweeper's outer algorithm (Algorithm 3) with Ideas 2, 4, 7 and
// the count-mode reuse wired in.
func (ex *exec) loop() error {
	for ex.cds.ComputeFreeTuple() {
		if err := ex.tick.Tick(); err != nil {
			return err
		}
		t := ex.cds.Frontier()
		if ex.counter != nil {
			reused, err := ex.counter.visit(t)
			if err != nil {
				return err
			}
			if reused {
				continue
			}
		}
		gapFound := false
		var adv []int64
		done := false
		for i := range ex.atoms {
			gap, found := ex.probeAtom(i, t)
			if found {
				continue
			}
			gapFound = true
			if ex.inSkel[i] {
				pm := &ex.probes[i]
				if !pm.insertedCur {
					ex.cds.InsConstraint(ex.constraintFor(i, gap))
					ex.stats.Constraints++
					pm.insertedCur = true
				}
			} else {
				cand, exhausted := ex.advanceFrom(t, ex.atoms[i].VarPos[gap.Col], gap.Hi)
				if exhausted {
					done = true
					break
				}
				if adv == nil || relation.CompareTuples(cand, adv) > 0 {
					adv = cand
				}
			}
		}
		if done {
			break
		}
		if !gapFound {
			if !ex.residualsOK(t) {
				// Verified present in every atom but rejected by a residual
				// predicate: step past it without reporting.
				ex.cds.AdvanceOutput()
				continue
			}
			if !ex.output(t) {
				break
			}
			if ex.prefix > 0 {
				// Early duplicate elimination: every deeper tuple shares the
				// just-emitted output prefix, so skip the whole prefix
				// subtree instead of enumerating (and deduplicating) it.
				adv := append([]int64(nil), t...)
				adv[ex.prefix-1]++
				for i := ex.prefix; i < ex.n; i++ {
					adv[i] = -1
				}
				ex.cds.SetFrontier(adv)
				continue
			}
			ex.cds.AdvanceOutput()
			continue
		}
		if adv != nil && relation.CompareTuples(adv, t) > 0 {
			ex.cds.SetFrontier(adv)
		}
	}
	if ex.cds.Err != nil {
		return ex.cds.Err
	}
	if ex.counter != nil {
		ex.counter.finish()
	}
	return nil
}

// residualsOK evaluates the residual predicates against a full free tuple in
// GAO order.
func (ex *exec) residualsOK(t []int64) bool {
	if ex.push == nil {
		return true
	}
	for _, r := range ex.push.Residuals {
		if !r.Eval(t) {
			return false
		}
	}
	return true
}

// output reports the free tuple (verified to be in every atom). It returns
// false to stop enumeration.
func (ex *exec) output(t []int64) bool {
	ex.total++
	if ex.counter != nil {
		ex.counter.onOutput()
		return true
	}
	if ex.emit == nil {
		return true
	}
	if ex.prefix > 0 {
		// The planner guarantees the leading GAO columns are the query's
		// output prefix in execution order; emit them directly.
		if ex.out == nil {
			ex.out = make([]int64, ex.prefix)
		}
		copy(ex.out, t[:ex.prefix])
		return ex.emit(ex.out)
	}
	if ex.out == nil {
		ex.out = make([]int64, ex.n)
	}
	for g, v := range ex.outPerm {
		ex.out[v] = t[g]
	}
	return ex.emit(ex.out)
}

// advanceFrom computes the Idea 7 frontier advance for a gap on global
// position pos with least present upper value hi: skip to (t[..pos-1], hi)
// or, when the atom has nothing above, past the enclosing prefix.
// exhausted == true means the whole remaining space is dead.
func (ex *exec) advanceFrom(t []int64, pos int, hi int64) (cand []int64, exhausted bool) {
	cand = append([]int64(nil), t...)
	if hi < posInf {
		cand[pos] = hi
		for i := pos + 1; i < ex.n; i++ {
			cand[i] = -1
		}
		return cand, false
	}
	if pos == 0 {
		return nil, true
	}
	cand[pos-1]++
	for i := pos; i < ex.n; i++ {
		cand[i] = -1
	}
	return cand, false
}

// constraintFor builds the CDS constraint for atom i's current gap, using
// the probe memo's stored projection (paper §4.5).
func (ex *exec) constraintFor(i int, gap relation.Gap) Constraint {
	vp := ex.atoms[i].VarPos
	pm := &ex.probes[i]
	return Constraint{
		EqPos: append([]int(nil), vp[:gap.Col]...),
		EqVal: append([]int64(nil), pm.point[:gap.Col]...),
		Col:   vp[gap.Col],
		Lo:    gap.Lo,
		Hi:    gap.Hi,
	}
}

// probeMemo caches the last probe per atom (Idea 4): while the free tuple's
// projection stays inside the last gap band — or hits the band's upper
// endpoint on the last column, proving membership — no index seek is needed.
type probeMemo struct {
	valid       bool
	found       bool
	gap         relation.Gap
	point       []int64
	insertedCur bool
}

// probeAtom returns atom i's gap (or found == true) for free tuple t.
func (ex *exec) probeAtom(i int, t []int64) (relation.Gap, bool) {
	vp := ex.atoms[i].VarPos
	pm := &ex.probes[i]
	proj := ex.scratch[:len(vp)]
	same := pm.valid
	for k, p := range vp {
		proj[k] = t[p]
		if pm.point == nil || proj[k] != pm.point[k] {
			same = false
		}
	}
	if pm.point == nil {
		pm.point = make([]int64, len(vp))
	}
	if !ex.opts.DisableMemo && pm.valid {
		if same {
			ex.stats.ProbeMemoHits++
			return pm.gap, pm.found
		}
		if !pm.found {
			j := pm.gap.Col
			prefixSame := true
			for k := 0; k < j; k++ {
				if proj[k] != pm.point[k] {
					prefixSame = false
					break
				}
			}
			if prefixSame {
				v := proj[j]
				if v > pm.gap.Lo && v < pm.gap.Hi {
					// Still inside the remembered gap: reuse it. The CDS
					// constraint for this pattern is unchanged.
					copy(pm.point, proj)
					ex.stats.ProbeMemoHits++
					return pm.gap, false
				}
				if v == pm.gap.Hi && j == len(vp)-1 && pm.gap.Hi < posInf {
					// The projection hits the gap's least upper bound on the
					// last column: it is a present tuple (the paper's §4.5
					// example — no seek needed).
					copy(pm.point, proj)
					pm.found = true
					ex.stats.ProbeMemoHits++
					return relation.Gap{}, true
				}
			}
		}
	}
	gap, found := ex.atoms[i].Index.ProbeGap(proj)
	ex.stats.Probes++
	pm.valid = true
	pm.found = found
	pm.gap = gap
	pm.insertedCur = false
	copy(pm.point, proj)
	return gap, found
}
