#!/usr/bin/env bash
# Load smoke (the CI `load-smoke` job, runnable locally as `make load-smoke`):
# boot graphjoind with the metrics endpoint and an admission budget, drive it
# with graphjoinload's mixed workload, and leave the one-line JSON summary in
# load-smoke.json for scripts/loadgate.sh to gate. The harness itself fails
# the run when its client-side request ledger disagrees with the server's
# requests_total delta, so a green smoke also proves the metrics pipeline
# counts exactly.
#
# Tunables (environment): LOADSMOKE_CONNS (default 4), LOADSMOKE_DURATION
# (default 5s).
set -euo pipefail

cd "$(dirname "$0")/.."
bin="$(mktemp -d)"
server_pid=""
cleanup() {
  status=$?
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  if [ "$status" -ne 0 ] && [ -f "$bin/server.log" ]; then
    echo "loadsmoke: server log:" >&2
    cat "$bin/server.log" >&2
  fi
  rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/graphjoind" ./cmd/graphjoind
go build -o "$bin/graphjoinload" ./cmd/graphjoinload

"$bin/graphjoind" -listen 127.0.0.1:0 -metrics-addr 127.0.0.1:0 \
  -max-inflight 64 -max-queued 256 > "$bin/server.log" 2>&1 &
server_pid=$!

# Scrape both banners (wire address, metrics URL) with a deadline, not a
# fixed retry count — slow CI runners boot slower than laptops.
deadline=$(( $(date +%s) + 30 ))
addr="" metrics_addr=""
while [ "$(date +%s)" -lt "$deadline" ]; do
  addr="$(sed -n 's/.* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$bin/server.log")"
  metrics_addr="$(sed -n 's|.*metrics on http://\(127\.0\.0\.1:[0-9]*\)/metrics$|\1|p' "$bin/server.log")"
  [ -n "$addr" ] && [ -n "$metrics_addr" ] && break
  kill -0 "$server_pid" 2>/dev/null || { echo "loadsmoke: server died during boot" >&2; exit 1; }
  sleep 0.1
done
if [ -z "$addr" ] || [ -z "$metrics_addr" ]; then
  echo "loadsmoke: server never became ready" >&2
  exit 1
fi

"$bin/graphjoinload" \
  -addr "$addr" \
  -metrics-url "http://$metrics_addr/metrics" \
  -conns "${LOADSMOKE_CONNS:-4}" \
  -duration "${LOADSMOKE_DURATION:-5s}" \
  | tee load-smoke.json

kill -TERM "$server_pid"
wait "$server_pid" || { echo "loadsmoke: server exited non-zero" >&2; exit 1; }
server_pid=""
echo "loadsmoke: OK"
