package relation

// Cursor is the trie-cursor contract every access path in this package
// implements (TrieIterator, CSRCursor, ShardedCursor, OverlayCursor): Open
// descends to the first child of the current node, Up pops back, Next and
// SeekGE move within the current level in increasing key order (no-ops at
// the end of a level; callers check AtEnd). It mirrors the engine-facing
// core.TrieCursor interface so backends can hand cursors up without
// wrapping.
type Cursor interface {
	Open()
	Up()
	Next()
	SeekGE(v int64)
	AtEnd() bool
	Key() int64
}

// TrieIterator presents a sorted relation as a trie, the interface Leapfrog
// Triejoin is defined against (paper §2.2 and [15]): at depth d it iterates
// the distinct values of column d among rows sharing the currently selected
// prefix, in increasing order, and supports seeking the least key >= a bound.
//
// The iterator starts at the virtual root (depth -1 in trie terms). Open
// descends to the first key of the next level, Up pops back. Key, Next, Seek
// and AtEnd act on the current level. Calling Next or Seek at the end of a
// level is a no-op; callers check AtEnd.
type TrieIterator struct {
	r *Relation
	// depth is the number of opened levels; the current level's column is
	// depth-1. depth==0 means the iterator is at the root.
	depth int
	lo    []int // per opened level: start of parent range
	hi    []int // per opened level: end of parent range
	pos   []int // per opened level: current row
}

// NewTrieIterator returns an iterator positioned at the root of r's trie.
func NewTrieIterator(r *Relation) *TrieIterator {
	return &TrieIterator{
		r:   r,
		lo:  make([]int, 0, r.arity),
		hi:  make([]int, 0, r.arity),
		pos: make([]int, 0, r.arity),
	}
}

// Relation returns the underlying relation.
func (it *TrieIterator) Relation() *Relation { return it.r }

// Depth returns the number of currently opened levels.
func (it *TrieIterator) Depth() int { return it.depth }

// Open descends one level, positioning at the first key below the current
// position. It panics if already at full depth. Opening below an at-end
// level is not allowed.
func (it *TrieIterator) Open() {
	if it.depth == it.r.arity {
		panic("relation: TrieIterator.Open below leaf level")
	}
	var lo, hi int
	if it.depth == 0 {
		lo, hi = 0, it.r.n
	} else {
		if it.AtEnd() {
			panic("relation: TrieIterator.Open at end of level")
		}
		cur := it.depth - 1
		lo = it.pos[cur]
		hi = it.r.upperBound(cur, lo, it.hi[cur], it.key(cur))
	}
	it.lo = append(it.lo, lo)
	it.hi = append(it.hi, hi)
	it.pos = append(it.pos, lo)
	it.depth++
}

// Up pops back to the previous level. It panics at the root.
func (it *TrieIterator) Up() {
	if it.depth == 0 {
		panic("relation: TrieIterator.Up at root")
	}
	it.depth--
	it.lo = it.lo[:it.depth]
	it.hi = it.hi[:it.depth]
	it.pos = it.pos[:it.depth]
}

// AtEnd reports whether the current level is exhausted.
func (it *TrieIterator) AtEnd() bool {
	cur := it.depth - 1
	return it.pos[cur] >= it.hi[cur]
}

// Key returns the current key at the current level.
func (it *TrieIterator) Key() int64 {
	return it.key(it.depth - 1)
}

func (it *TrieIterator) key(level int) int64 {
	return it.r.rows[it.pos[level]*it.r.arity+level]
}

// Next advances to the next distinct key at the current level.
func (it *TrieIterator) Next() {
	cur := it.depth - 1
	if it.pos[cur] >= it.hi[cur] {
		return
	}
	it.pos[cur] = it.r.upperBound(cur, it.pos[cur], it.hi[cur], it.key(cur))
}

// SeekGE positions at the least key >= v at the current level. Seeking
// backwards is a no-op (keys are visited in increasing order).
func (it *TrieIterator) SeekGE(v int64) {
	cur := it.depth - 1
	if it.pos[cur] >= it.hi[cur] || it.key(cur) >= v {
		return
	}
	it.pos[cur] = it.r.lowerBound(cur, it.pos[cur], it.hi[cur], v)
}
