package graphalgo

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/testutil"
)

func adjFor(t *testing.T, edges [][2]int64) *Adjacency {
	t.Helper()
	db := testutil.GraphDB(edges, nil)
	a, err := BuildAdjacency(db)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBFSPathGraph(t *testing.T) {
	a := adjFor(t, [][2]int64{{0, 1}, {1, 2}, {2, 3}, {5, 6}})
	dist, err := a.BFS(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]int{0: 0, 1: 1, 2: 2, 3: 3}
	if !reflect.DeepEqual(dist, want) {
		t.Errorf("BFS = %v, want %v", dist, want)
	}
}

func TestShortestPath(t *testing.T) {
	a := adjFor(t, [][2]int64{{0, 1}, {1, 2}, {2, 3}, {0, 4}, {4, 3}})
	path, ok, err := a.ShortestPath(context.Background(), 0, 3)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if len(path) != 3 || path[0] != 0 || path[2] != 3 {
		t.Errorf("path = %v, want a 2-hop route 0..3", path)
	}
	if _, ok, _ := a.ShortestPath(context.Background(), 0, 99); ok {
		t.Error("disconnected vertices should not have a path")
	}
	self, ok, _ := a.ShortestPath(context.Background(), 2, 2)
	if !ok || !reflect.DeepEqual(self, []int64{2}) {
		t.Errorf("self path = %v", self)
	}
}

func TestConnectedComponents(t *testing.T) {
	a := adjFor(t, [][2]int64{{0, 1}, {1, 2}, {5, 6}})
	comp, err := a.ConnectedComponents(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if comp[0] != comp[2] || comp[0] == comp[5] {
		t.Errorf("components = %v", comp)
	}
}

func TestPageRankStarGraph(t *testing.T) {
	// Star: hub 0 connected to 1..4; hub must out-rank leaves, ranks sum ~1.
	a := adjFor(t, [][2]int64{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	rank, err := a.PageRank(context.Background(), 0.85, 50)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %v, want 1", sum)
	}
	for v := int64(1); v <= 4; v++ {
		if rank[0] <= rank[v] {
			t.Errorf("hub rank %v <= leaf rank %v", rank[0], rank[v])
		}
	}
	if _, err := a.PageRank(context.Background(), 1.5, 1); err == nil {
		t.Error("bad damping should fail")
	}
}

// Property-ish check: BFS distances satisfy the triangle condition on random
// graphs (each edge relaxes distances by at most 1).
func TestBFSRelaxation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	edges := testutil.RandomGraph(rng, 40, 120)
	a := adjFor(t, edges)
	dist, err := a.BFS(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		du, okU := dist[e[0]]
		dv, okV := dist[e[1]]
		if okU != okV {
			t.Fatalf("edge %v crosses the reachable boundary", e)
		}
		if okU && abs(du-dv) > 1 {
			t.Errorf("edge %v has distance gap %d", e, abs(du-dv))
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := adjFor(t, testutil.RandomGraph(rng, 2000, 8000))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.BFS(ctx, 0); err == nil {
		t.Error("BFS should honor cancellation")
	}
	if _, err := a.PageRank(ctx, 0.85, 10); err == nil {
		t.Error("PageRank should honor cancellation")
	}
}

func TestMissingEdgeRelation(t *testing.T) {
	db := testutil.GraphDB(nil, nil)
	if _, err := BuildAdjacency(db); err != nil {
		t.Fatalf("empty edge relation should build: %v", err)
	}
}
