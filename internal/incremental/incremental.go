// Package incremental maintains materialized pattern-count views under
// edge insertions and deletions. The paper motivates LogicBlox's adoption
// of optimal joins partly through incrementally maintained materialized
// views ("LogicBlox encourages the use of materialized views that are
// incrementally maintained", §3, citing Veldhuizen's incremental LFTJ
// [14]); this package implements the classical delta-query approach via
// multilinearity. An update batch takes each relation R → F = (R ∖ D) ∪ I,
// with D the deletes actually present and I the inserts actually absent
// (core.CanonicalDelta's normal form), so pointwise
//
//	χ_F = χ_R − χ_D + χ_I,
//
// and since a join count is multilinear in every atom occurrence jointly,
//
//	Q(F, ...) = Σ_a (−1)^{#D-choices in a} · Q[a],
//
// summed over all assignments a of each occurrence to base/D/I — every term
// evaluated against the PRE-update database with D and I registered as tiny
// scratch relations. The correction (the sum over non-all-base assignments,
// each term a small join with Δ-bound atoms keeping it tiny) is therefore
// computed entirely before anything is applied, and the whole batch — every
// relation's inserts and deletes together — then lands through ONE atomic
// core.DB.ApplyDeltas call: no reader can observe a mid-batch state, no
// error path leaves the database partially updated, and a durable store
// logs the maintenance batch as a single write-ahead record.
//
// Views run on the CSR backend by default: the atomic apply folds each
// batch into the cached CSR indexes' delta overlays (relation.Overlay) in
// time proportional to the small log rather than an index rebuild, so the
// compiled delta plans — and the physical indexes they bind — survive
// arbitrarily many batches. Only the tiny Δ relations' atoms are re-bound
// per batch.
package incremental

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/lftj"
	"repro/internal/query"
	"repro/internal/relation"
)

// insSuffix and delSuffix name the scratch delta relations registered in
// the database during a correction pass: rel+"@ins" holds the batch's
// effective insertions into rel, rel+"@del" its effective deletions. The
// "@" keeps them outside the identifier space the public Store accepts, so
// they can never collide with a user relation.
const (
	insSuffix = "@ins"
	delSuffix = "@del"
)

// isScratch reports whether an atom references a per-batch scratch delta
// relation (those atoms are re-bound on every batch; base atoms are not).
func isScratch(rel string) bool {
	return strings.HasSuffix(rel, insSuffix) || strings.HasSuffix(rel, delSuffix)
}

// termBudget bounds the number of correction terms one update batch may
// expand into (3^m − 1 assignments for m varying occurrences, before
// empty-side pruning).
const termBudget = 1 << 20

// View is a maintained count of a query over a database. The delta queries
// it evaluates per update batch are planned once: the GAO and the per-mask
// term queries are derived at construction (or on a relation's first
// update), and under the CSR backend the compiled plans themselves are
// cached across batches — ApplyDelta keeps their bound indexes current, so
// per batch only the delta relation's atoms are re-bound.
type View struct {
	q       *query.Query
	db      *core.DB
	backend core.Backend
	count   int64
	gao     []string
	gaoPos  map[string]int
	// occ[rel] lists the atom indices referencing rel.
	occ map[string][]int
	// terms caches correction-term queries by assignment signature (one
	// byte per atom: base/del/ins), so a recurring batch shape reuses the
	// same *query.Query — and through it the same cached plan.
	terms map[string]*query.Query
	// plans caches compiled plans per term query (CSR backend only); valid
	// while dbVersion matches the database's mutation counter as tracked
	// through the view's own updates.
	plans     map[*query.Query]*core.Plan
	dbVersion int64
	sc        *core.StatsCollector
	// apply lands one atomic multi-relation batch; defaults to the
	// database's ApplyDeltas. A durable store overrides it (SetApply) so
	// each maintenance batch is logged as a single write-ahead record.
	apply func([]core.DeltaBatch) error
}

// SetApply overrides how the view lands its (already canonicalized) update
// batches — one atomic multi-relation apply per maintenance batch. The
// default is core.DB.ApplyDeltas on the view's database; a durable store
// routes it through its write-ahead log instead. The function must apply to
// the same database the view reads, atomically.
func (v *View) SetApply(fn func([]core.DeltaBatch) error) { v.apply = fn }

// NewView computes the initial count and returns the maintained view on the
// default backend.
func NewView(ctx context.Context, q *query.Query, db *core.DB) (*View, error) {
	return NewViewBackend(ctx, q, db, core.DefaultBackend)
}

// NewViewBackend is NewView with an explicit index backend for the delta
// queries. The CSR backend is the fast path (incremental index maintenance
// through delta overlays); flat and csr-sharded re-bind their physical
// indexes per batch and serve as the differential-testing reference.
func NewViewBackend(ctx context.Context, q *query.Query, db *core.DB, backend core.Backend) (*View, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if backend == "" {
		backend = core.DefaultBackend
	}
	gao := q.Vars()
	pos := make(map[string]int, len(gao))
	for i, v := range gao {
		pos[v] = i
	}
	v := &View{
		q:       q,
		db:      db,
		backend: backend,
		gao:     gao,
		gaoPos:  pos,
		occ:     make(map[string][]int),
		terms:   make(map[string]*query.Query),
		plans:   make(map[*query.Query]*core.Plan),
		sc:      &core.StatsCollector{},
	}
	v.apply = db.ApplyDeltas
	v.sc.Add(core.Stats{GAODerivations: 1})
	v.dbVersion = db.Version()
	n, err := v.run(ctx, q)
	if err != nil {
		return nil, err
	}
	v.count = n
	for i, a := range q.Atoms {
		v.occ[a.Rel] = append(v.occ[a.Rel], i)
	}
	return v, nil
}

// run evaluates one query (the view query or a delta term) with the
// worst-case-optimal engine under the view's fixed GAO.
func (v *View) run(ctx context.Context, q *query.Query) (int64, error) {
	plan, err := v.planFor(q)
	if err != nil {
		return 0, err
	}
	v.sc.Add(core.Stats{Executions: 1})
	e := lftj.Engine{Opts: lftj.Options{Plan: plan, Stats: v.sc}}
	return e.Count(ctx, q, v.db)
}

// planFor returns a plan for q. Under the CSR backend the base compilation
// is cached across batches (the atomic delta apply keeps its bound indexes
// current in place) and only atoms over @ins/@del scratch relations are
// re-bound; other backends recompile per run, because the apply invalidates
// their physical indexes.
func (v *View) planFor(q *query.Query) (*core.Plan, error) {
	if v.backend != core.BackendCSR {
		return core.NewPlan(q, v.db, "lftj", v.gao, nil, false, v.backend, v.sc)
	}
	if ver := v.db.Version(); ver != v.dbVersion {
		// The database changed outside this view's own updates; cached
		// plans may bind replaced indexes. Drop and recompile.
		v.plans = make(map[*query.Query]*core.Plan)
		v.dbVersion = ver
	}
	base, ok := v.plans[q]
	if !ok {
		var err error
		base, err = core.NewPlan(q, v.db, "lftj", v.gao, nil, false, v.backend, v.sc)
		if err != nil {
			return nil, err
		}
		v.plans[q] = base
	}
	deltas := 0
	for _, a := range q.Atoms {
		if isScratch(a.Rel) {
			deltas++
		}
	}
	if deltas == 0 {
		return base, nil
	}
	// The scratch delta relations are re-registered every batch, so their
	// atoms are re-bound on a copy of the cached plan; base-relation
	// bindings carry over untouched.
	cp := *base
	cp.Atoms = append([]core.AtomIndex(nil), base.Atoms...)
	for i, a := range q.Atoms {
		if !isScratch(a.Rel) {
			continue
		}
		ai, err := core.BindAtom(a, v.db, v.gaoPos, v.backend)
		if err != nil {
			return nil, err
		}
		cp.Atoms[i] = ai
	}
	v.sc.Add(core.Stats{IndexBindings: int64(deltas)})
	return &cp, nil
}

// sync records the database version after one of the view's own mutations,
// so planFor can tell the view's updates apart from external ones.
func (v *View) sync() { v.dbVersion = v.db.Version() }

// Count returns the maintained count.
func (v *View) Count() int64 { return v.count }

// Backend returns the index backend the view's delta queries run on.
func (v *View) Backend() core.Backend { return v.backend }

// Stats returns the view's accumulated planning and execution counters.
// GAODerivations stays at 1 across arbitrarily many update batches — the
// attribute order and term queries are derived once. IndexBindings grows
// only with the delta atoms re-bound per batch (the base relations' CSR
// indexes are maintained in place by ApplyDelta and never re-bound).
func (v *View) Stats() core.Stats { return v.sc.Snapshot() }

// Recount recomputes from scratch (for verification).
func (v *View) Recount(ctx context.Context) (int64, error) {
	return (lftj.Engine{}).Count(ctx, v.q, v.db)
}

// UpdateRelation applies inserts and deletes to one relation and corrects
// the view: Update for a single-relation batch. Tuples to insert that are
// already present, and tuples to delete that are absent, are ignored; a
// tuple on both sides resolves as delete-after-insert, matching every other
// write path.
func (v *View) UpdateRelation(ctx context.Context, rel string, inserts, deletes [][]int64) error {
	return v.Update(ctx, []core.DeltaBatch{{Name: rel, Inserts: inserts, Deletes: deletes}})
}

// occChoice is one varying atom occurrence in a correction pass: the atom
// index and the scratch relation names its base relation's effective
// deletes and inserts were registered under ("" when that side is empty, in
// which case the occurrence never takes that choice).
type occChoice struct {
	atom     int
	del, ins string
}

// Update applies one multi-relation batch (each relation at most once) and
// corrects the maintained count. The correction is computed entirely
// against the pre-update database by signed multilinear expansion (see the
// package comment), then the whole batch lands through one atomic apply —
// a concurrent snapshot observes either the full batch or none of it, and
// any error during correction leaves the database untouched. Semantics per
// relation match core.DB.ApplyDeltas exactly: inserts already present and
// deletes absent are ignored; a tuple on both sides resolves as
// delete-after-insert.
func (v *View) Update(ctx context.Context, batches []core.DeltaBatch) error {
	// Canonicalize every batch against the pre-state: D ⊆ R present
	// deletes, I absent (and not deleted) inserts — the normal form both
	// the χ identity and the eventual apply agree on.
	seen := make(map[string]bool, len(batches))
	var choices []occChoice
	canon := make([]core.DeltaBatch, 0, len(batches))
	for _, b := range batches {
		if seen[b.Name] {
			return fmt.Errorf("incremental: relation %q appears twice in one update batch", b.Name)
		}
		seen[b.Name] = true
		r, err := v.db.Relation(b.Name)
		if err != nil {
			return err
		}
		ins, dels := core.CanonicalDelta(r, b.Inserts, b.Deletes)
		if len(ins) == 0 && len(dels) == 0 {
			continue
		}
		canon = append(canon, core.DeltaBatch{Name: b.Name, Inserts: ins, Deletes: dels})
		if len(v.occ[b.Name]) == 0 {
			continue // the view does not read this relation; apply only
		}
		// Register the non-empty sides as scratch relations for the
		// correction terms to bind.
		var c occChoice
		if len(dels) > 0 {
			c.del = b.Name + delSuffix
			v.db.Add(tuplesToRelation(c.del, r.Arity(), dels))
		}
		if len(ins) > 0 {
			c.ins = b.Name + insSuffix
			v.db.Add(tuplesToRelation(c.ins, r.Arity(), ins))
		}
		for _, ai := range v.occ[b.Name] {
			c.atom = ai
			choices = append(choices, c)
		}
	}
	v.sync()
	correction, err := v.correction(ctx, choices)
	if err != nil {
		return err
	}
	if len(canon) > 0 {
		if err := v.apply(canon); err != nil {
			return err
		}
		v.sync()
	}
	v.count += correction
	return nil
}

// correction sums sign(a)·Q[a] over every non-all-base assignment a of the
// varying occurrences, each occurrence choosing base, its @del scratch
// (sign −), or its @ins scratch (sign +) — all evaluated against the
// pre-update database. Term queries are cached by assignment signature, so
// a recurring batch shape reuses its compiled plans.
func (v *View) correction(ctx context.Context, choices []occChoice) (int64, error) {
	if len(choices) == 0 {
		return 0, nil
	}
	nTerms := 1
	for _, c := range choices {
		k := 1
		if c.del != "" {
			k++
		}
		if c.ins != "" {
			k++
		}
		if nTerms *= k; nTerms > termBudget {
			return 0, fmt.Errorf("incremental: update expands into more than %d correction terms", termBudget)
		}
	}
	sig := make([]byte, len(v.q.Atoms))
	// state[i] ∈ {0 base, 1 del, 2 ins} per varying occurrence; odometer
	// enumeration over the mixed-radix space, skipping the all-base start.
	state := make([]int, len(choices))
	var total int64
	for {
		i := 0
		for ; i < len(state); i++ {
			state[i]++
			if state[i] == 1 && choices[i].del == "" {
				state[i]++
			}
			if state[i] == 2 && choices[i].ins == "" {
				state[i]++
			}
			if state[i] <= 2 {
				break
			}
			state[i] = 0
		}
		if i == len(state) {
			return total, nil // odometer wrapped: all assignments done
		}
		for j := range sig {
			sig[j] = 'b'
		}
		sign := int64(1)
		for j, c := range choices {
			switch state[j] {
			case 1:
				sig[c.atom] = 'd'
				sign = -sign
			case 2:
				sig[c.atom] = 'i'
			}
		}
		n, err := v.run(ctx, v.termFor(string(sig), choices))
		if err != nil {
			return 0, err
		}
		total += sign * n
	}
}

// termFor returns the correction-term query for one assignment signature,
// building and caching it on first use. Cached terms keep stable pointers,
// which is what keeps the per-term compiled plans cached across batches.
func (v *View) termFor(sig string, choices []occChoice) *query.Query {
	if t, ok := v.terms[sig]; ok {
		return t
	}
	atoms := make([]query.Atom, len(v.q.Atoms))
	copy(atoms, v.q.Atoms)
	for _, c := range choices {
		switch sig[c.atom] {
		case 'd':
			atoms[c.atom] = query.Atom{Rel: c.del, Vars: atoms[c.atom].Vars}
		case 'i':
			atoms[c.atom] = query.Atom{Rel: c.ins, Vars: atoms[c.atom].Vars}
		}
	}
	t := query.New(v.q.Name+"/delta", atoms...)
	v.terms[sig] = t
	return t
}

func tuplesToRelation(name string, arity int, tuples [][]int64) *relation.Relation {
	b := relation.NewBuilder(name, arity)
	for _, t := range tuples {
		b.Add(t...)
	}
	return b.Build()
}

// GraphView maintains a pattern count over the benchmark graph schema: an
// undirected edge update touches both the symmetric "edge" relation and the
// oriented "fwd" relation.
type GraphView struct {
	*View
}

// NewGraphView builds a maintained view over the graph schema on the
// default backend.
func NewGraphView(ctx context.Context, q *query.Query, db *core.DB) (*GraphView, error) {
	return NewGraphViewBackend(ctx, q, db, core.DefaultBackend)
}

// NewGraphViewBackend is NewGraphView with an explicit index backend.
func NewGraphViewBackend(ctx context.Context, q *query.Query, db *core.DB, backend core.Backend) (*GraphView, error) {
	v, err := NewViewBackend(ctx, q, db, backend)
	if err != nil {
		return nil, err
	}
	return &GraphView{View: v}, nil
}

// ApplyEdges inserts and removes undirected edges, updating both derived
// relations and the count as ONE atomic batch: the correction for "edge"
// and "fwd" is computed jointly against the pre-update state, then both
// relations land through a single ApplyDeltas — a concurrent snapshot can
// never observe one updated and not the other.
func (g *GraphView) ApplyEdges(ctx context.Context, insert, remove [][2]int64) error {
	return g.Update(ctx, []core.DeltaBatch{
		{Name: query.Edge, Inserts: Orient(insert, false), Deletes: Orient(remove, false)},
		{Name: query.Fwd, Inserts: Orient(insert, true), Deletes: Orient(remove, true)},
	})
}

// Orient turns undirected edges into benchmark-schema tuples: both
// directions for the symmetric "edge" relation, or just the u<v orientation
// for "fwd" (fwdOnly). Self-loops are dropped. Every write path that keeps
// the benchmark schema's invariants — this view's ApplyEdges and the public
// Graph.ApplyEdges — routes through it.
func Orient(edges [][2]int64, fwdOnly bool) [][]int64 {
	var out [][]int64
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		out = append(out, []int64{u, v})
		if !fwdOnly {
			out = append(out, []int64{v, u})
		}
	}
	return out
}
