package router

import (
	"time"

	"repro/internal/metrics"
)

// routerMetrics is the coordinator's serving instrumentation: how wide
// fan-outs run, how long each host takes, how far the slowest host trails
// the fastest (the straggler gap a §4.10-style partitioned execution is
// bounded by), and how often overloaded hosts force retries.
type routerMetrics struct {
	fanout    *metrics.Histogram            // hosts touched per fanned-out execution
	straggler *metrics.Histogram            // slowest minus fastest host seconds per fan-out
	retries   *metrics.Counter              // idempotent-read retries after ErrOverloaded
	hostLat   map[string]*metrics.Histogram // per-host request duration, by host label
}

func newRouterMetrics(hosts []string) *routerMetrics {
	reg := metrics.Default()
	m := &routerMetrics{
		fanout: reg.HistogramBuckets("graphjoinrouter_fanout_width",
			"Hosts touched per fanned-out query execution.", metrics.SizeBuckets),
		straggler: reg.Histogram("graphjoinrouter_straggler_gap_seconds",
			"Per-fan-out gap between the slowest and fastest host."),
		retries: reg.Counter("graphjoinrouter_retries_total",
			"Idempotent read requests retried after a host admission rejection."),
		hostLat: make(map[string]*metrics.Histogram, len(hosts)),
	}
	for _, h := range hosts {
		m.hostLat[h] = reg.Histogram("graphjoinrouter_host_request_seconds",
			"Per-host request duration as observed by the router.", "host", h)
	}
	return m
}

// observeHost records one host request's duration.
func (m *routerMetrics) observeHost(host string, d time.Duration) {
	if h, ok := m.hostLat[host]; ok {
		h.Observe(d.Seconds())
	}
}

// observeFanout records one fan-out's width and straggler gap from the
// per-host durations (zero entries mean the host was skipped).
func (m *routerMetrics) observeFanout(durations []time.Duration) {
	width := 0
	var fastest, slowest time.Duration
	for _, d := range durations {
		if d <= 0 {
			continue
		}
		if width == 0 || d < fastest {
			fastest = d
		}
		if d > slowest {
			slowest = d
		}
		width++
	}
	m.fanout.Observe(float64(width))
	if width > 1 {
		m.straggler.Observe((slowest - fastest).Seconds())
	}
}
