package hypergraph

import (
	"fmt"

	"repro/internal/query"
)

// JoinTree is a join tree over the atoms of an α-acyclic query: node i is
// atom i, Parent[i] is the parent atom index (-1 for the root), and the
// running-intersection property holds (for any variable, the atoms
// containing it form a connected subtree). Yannakakis' algorithm [17]
// executes semijoin passes over this tree.
type JoinTree struct {
	Root   int
	Parent []int
	// Order is a bottom-up ordering of the nodes (children before parents).
	Order []int
}

// BuildJoinTree constructs a join tree by GYO ear removal over the atoms.
// It fails if the query is not α-acyclic.
func BuildJoinTree(q *query.Query) (*JoinTree, error) {
	n := len(q.Atoms)
	if n == 0 {
		return nil, fmt.Errorf("hypergraph: empty query")
	}
	sets := make([]map[string]bool, n)
	for i, a := range q.Atoms {
		sets[i] = toSet(a.Vars)
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var order []int
	remaining := n
	for remaining > 1 {
		// Find an ear: an edge e whose vertices are each either exclusive to
		// e or contained in a single witness edge f.
		earFound := false
		for i := 0; i < n && !earFound; i++ {
			if !alive[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if i == j || !alive[j] {
					continue
				}
				if isEar(i, j, sets, alive) {
					parent[i] = j
					alive[i] = false
					order = append(order, i)
					remaining--
					earFound = true
					break
				}
			}
		}
		if !earFound {
			return nil, fmt.Errorf("hypergraph: query %q is not alpha-acyclic", q.Name)
		}
	}
	root := -1
	for i, a := range alive {
		if a {
			root = i
			break
		}
	}
	order = append(order, root)
	return &JoinTree{Root: root, Parent: parent, Order: order}, nil
}

// isEar reports whether edge i is an ear with witness j: every vertex of i
// is exclusive to i (among alive edges) or belongs to j.
func isEar(i, j int, sets []map[string]bool, alive []bool) bool {
	for v := range sets[i] {
		if sets[j][v] {
			continue
		}
		for k, s := range sets {
			if k != i && alive[k] && s[v] {
				return false
			}
		}
	}
	return true
}
