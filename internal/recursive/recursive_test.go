package recursive

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/lftj"
	"repro/internal/query"
	"repro/internal/testutil"
)

func TestTransitiveClosurePath(t *testing.T) {
	// Undirected path 0-1-2-3: the symmetric edge relation makes every pair
	// mutually reachable: tc = 4x4 pairs including self-loops via cycles.
	db := testutil.GraphDB([][2]int64{{0, 1}, {1, 2}, {2, 3}}, nil)
	tc, err := TransitiveClosure(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Len() != 16 {
		t.Errorf("tc size = %d, want 16 (all pairs incl. self via back-and-forth)", tc.Len())
	}
}

func TestReachableDisconnected(t *testing.T) {
	db := testutil.GraphDB([][2]int64{{0, 1}, {5, 6}}, nil)
	n, err := Reachable(context.Background(), db, 0)
	if err != nil {
		t.Fatal(err)
	}
	// From 0: reach 1 and 0 (via 0-1-0).
	if n != 2 {
		t.Errorf("reachable(0) = %d, want 2", n)
	}
	if n, _ := Reachable(context.Background(), db, 5); n != 2 {
		t.Errorf("reachable(5) = %d, want 2", n)
	}
}

// TestTCMatchesIterativeJoin: tc must be the fixpoint of pairwise
// composition (checked by composing tc with edge once more: no new pairs).
func TestTCFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := testutil.RandomGraphDB(rng, 15, 25, 1)
	ctx := context.Background()
	if err := RegisterTC(ctx, db); err != nil {
		t.Fatal(err)
	}
	tc, err := db.Relation("tc")
	if err != nil {
		t.Fatal(err)
	}
	// Compose: tc(x,z), edge(z,y) must be a subset of tc.
	comp := query.New("comp",
		query.Atom{Rel: "tc", Vars: []string{"x", "z"}},
		query.Atom{Rel: query.Edge, Vars: []string{"z", "y"}},
	)
	err = (lftj.Engine{}).Enumerate(ctx, comp, db, func(tu []int64) bool {
		if !tc.Contains([]int64{tu[0], tu[2]}) {
			t.Errorf("pair (%d,%d) derivable but missing from tc", tu[0], tu[2])
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTCQueryableByEngines: the materialized closure participates in
// ordinary pattern queries (the §6 "recursive queries" benchmark shape).
func TestTCQueryableByEngines(t *testing.T) {
	db := testutil.GraphDB([][2]int64{{0, 1}, {1, 2}}, map[string][]int64{
		query.Sample1: {0},
		query.Sample2: {2},
	})
	ctx := context.Background()
	if err := RegisterTC(ctx, db); err != nil {
		t.Fatal(err)
	}
	q := query.New("reach",
		query.Atom{Rel: query.Sample1, Vars: []string{"a"}},
		query.Atom{Rel: "tc", Vars: []string{"a", "b"}},
		query.Atom{Rel: query.Sample2, Vars: []string{"b"}},
	)
	n, err := (lftj.Engine{}).Count(ctx, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("reach count = %d, want 1 (0 reaches 2)", n)
	}
}

func TestMissingEdgeRelation(t *testing.T) {
	if _, err := TransitiveClosure(context.Background(), core.NewDB()); err == nil {
		t.Error("missing edge relation should fail")
	}
}

func TestCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := testutil.RandomGraphDB(rng, 500, 3000, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TransitiveClosure(ctx, db); err == nil {
		t.Error("cancelled context should error")
	}
}
