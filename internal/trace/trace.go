// Package trace is the dependency-free tracing layer behind per-query
// execution profiles: one trace per request, spans per stage (server
// handling, engine execution, router fan-out legs, stream flushes), each
// span carrying a parent id so a distributed execution stitches back into a
// single tree — client → router → N shards → engines — with the straggler
// visible as the longest sibling leg.
//
// The layer is built to cost ~nothing when unused. Tracing is opt-in per
// request: a context without a span makes Start return (ctx, nil), and every
// method on a nil *Span is a no-op, so instrumented hot paths pay one
// context lookup and a nil check. Trace and span ids are 64-bit and non-zero
// (zero means "untraced" on the wire and "no parent" in a span record).
//
// Spans are collected into their Trace under a mutex with a hard per-trace
// cap, so a runaway enumeration cannot hold unbounded diagnostics, and
// completed traces are retained in a fixed-size Buffer ring for later fetch
// (the TTrace wire request, /debug/traces, the slow-query log).
package trace

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// ID identifies one trace: one request's execution tree, possibly spanning
// several processes. Zero means untraced.
type ID uint64

// SpanID identifies one span within a trace. Zero as a parent marks a root.
type SpanID uint64

// MaxSpans caps the spans one Trace retains; further spans are counted as
// dropped rather than buffered, bounding the diagnostic cost of a huge
// fan-out or a per-chunk instrumentation bug.
const MaxSpans = 512

// Attr is one span attribute: a named counter (Val) or label (Str). Exactly
// one of Val/Str is meaningful; Str == "" marks a numeric attribute.
type Attr struct {
	Key string `json:"key"`
	Val int64  `json:"val,omitempty"`
	Str string `json:"str,omitempty"`
}

// SpanRecord is a completed span in serializable form — what crosses the
// wire in a TTrace response and what the slow-query log and /debug/traces
// emit.
type SpanRecord struct {
	Trace    ID            `json:"trace"`
	ID       SpanID        `json:"span"`
	Parent   SpanID        `json:"parent,omitempty"`
	Stage    string        `json:"stage"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"dur_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Attr returns the string attribute under key ("" when absent).
func (r SpanRecord) Attr(key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Str
		}
	}
	return ""
}

// Trace collects the spans one process records under one trace id. Safe for
// concurrent use (fan-out legs record from their own goroutines).
type Trace struct {
	id ID

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int
}

// New returns a collector for the given trace id.
func New(id ID) *Trace { return &Trace{id: id} }

// ID returns the trace id.
func (t *Trace) ID() ID { return t.id }

// StartSpan opens a span under the given parent (zero for a root). The span
// records into the trace when ended.
func (t *Trace) StartSpan(parent SpanID, stage string) *Span {
	return &Span{
		tr:     t,
		id:     SpanID(newID()),
		parent: parent,
		stage:  stage,
		start:  time.Now(),
	}
}

// add records one completed span, honoring the per-trace cap.
func (t *Trace) add(r SpanRecord) {
	t.mu.Lock()
	if len(t.spans) >= MaxSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, r)
	}
	t.mu.Unlock()
}

// Spans snapshots the spans recorded so far.
func (t *Trace) Spans() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// Dropped reports how many spans the cap discarded.
func (t *Trace) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Data snapshots the trace for retention in a Buffer.
func (t *Trace) Data() Data {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Data{
		ID:      t.id,
		Spans:   append([]SpanRecord(nil), t.spans...),
		Dropped: t.dropped,
	}
}

// Span is an active (unfinished) span. A nil *Span is a valid no-op sink:
// every method returns immediately, which is the disabled-tracing fast path.
type Span struct {
	tr     *Trace
	id     SpanID
	parent SpanID
	stage  string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	done  bool
}

// TraceID returns the owning trace's id (zero on nil).
func (s *Span) TraceID() ID {
	if s == nil {
		return 0
	}
	return s.tr.id
}

// ID returns the span's id (zero on nil).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// SetInt attaches a numeric attribute. No-op on nil.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: v})
	s.mu.Unlock()
}

// SetStr attaches a string attribute. No-op on nil.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Str: v})
	s.mu.Unlock()
}

// End completes the span and records it into its trace. No-op on nil and on
// repeated calls.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	attrs := s.attrs
	s.mu.Unlock()
	s.tr.add(SpanRecord{
		Trace:    s.tr.id,
		ID:       s.id,
		Parent:   s.parent,
		Stage:    s.stage,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    attrs,
	})
}

// ctxKey is the private context key carrying the active span.
type ctxKey struct{}

// NewContext returns ctx carrying the span as the active one; child spans
// started from the returned context parent under it.
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the active span, or nil when the context is untraced —
// the single lookup instrumented code pays when tracing is off.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start opens a child span of the context's active span and returns a
// context carrying it. On an untraced context it returns (ctx, nil) without
// allocating — the fast path every instrumented call site takes when tracing
// is disabled.
func Start(ctx context.Context, stage string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.tr.StartSpan(parent.id, stage)
	return NewContext(ctx, s), s
}

// id generation: a process-random seed mixed through splitmix64 over an
// atomic counter — unique within a process, collision-unlikely across the
// cluster, and never zero (zero is the untraced marker).

var (
	idSeed    = randomSeed()
	idCounter atomic.Uint64
)

func randomSeed() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano())
	}
	return binary.LittleEndian.Uint64(b[:])
}

func newID() uint64 {
	for {
		x := idSeed + idCounter.Add(1)*0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// NewID allocates a fresh trace id.
func NewID() ID { return ID(newID()) }

// Data is one completed trace as retained by a Buffer.
type Data struct {
	ID      ID           `json:"trace"`
	Spans   []SpanRecord `json:"spans"`
	Dropped int          `json:"dropped,omitempty"`
}

// Buffer retains the last N completed traces (a ring): the store behind the
// TTrace wire request and the /debug/traces endpoint. Safe for concurrent
// use.
type Buffer struct {
	mu     sync.Mutex
	cap    int
	traces []Data // oldest first
}

// DefaultBufferTraces is the Buffer capacity servers use by default.
const DefaultBufferTraces = 64

// NewBuffer returns a buffer retaining up to n traces (n < 1 selects
// DefaultBufferTraces).
func NewBuffer(n int) *Buffer {
	if n < 1 {
		n = DefaultBufferTraces
	}
	return &Buffer{cap: n}
}

// Add retains one completed trace, evicting the oldest beyond capacity.
func (b *Buffer) Add(d Data) {
	b.mu.Lock()
	if len(b.traces) >= b.cap {
		copy(b.traces, b.traces[1:])
		b.traces[len(b.traces)-1] = d
	} else {
		b.traces = append(b.traces, d)
	}
	b.mu.Unlock()
}

// Get returns the spans retained under the trace id, merged across entries,
// oldest first: one client trace spans several requests (a count, then a
// stream), each observed as its own entry, and the stitched tree needs them
// all.
func (b *Buffer) Get(id ID) ([]SpanRecord, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var spans []SpanRecord
	found := false
	for i := range b.traces {
		if b.traces[i].ID == id {
			spans = append(spans, b.traces[i].Spans...)
			found = true
		}
	}
	return spans, found
}

// Last returns up to n most recent traces, oldest first.
func (b *Buffer) Last(n int) []Data {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n < 1 || n > len(b.traces) {
		n = len(b.traces)
	}
	out := make([]Data, n)
	copy(out, b.traces[len(b.traces)-n:])
	return out
}

// Sampler selects one in every N events (its own counter, so distinct
// subsystems sample independently). A nil Sampler never samples; every <= 0
// disables, every == 1 selects all.
type Sampler struct {
	every uint64
	n     atomic.Uint64
}

// NewSampler returns a 1-in-every sampler (nil when every <= 0, which is a
// valid never-sampling receiver).
func NewSampler(every int) *Sampler {
	if every <= 0 {
		return nil
	}
	return &Sampler{every: uint64(every)}
}

// Sample reports whether this event is selected.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	return s.n.Add(1)%s.every == 1 || s.every == 1
}
