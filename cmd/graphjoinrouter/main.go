// Command graphjoinrouter fronts a cluster of graphjoind hosts as one
// logical store — the reproduction's distributed query fabric. It speaks the
// same wire protocol as graphjoind, so existing clients (graphjoin -connect,
// graphjoinload, repro/client programmatically) drive a cluster unmodified:
// writes broadcast to every host, prepared queries fan out with each host
// executing one shard of the leading attribute's domain, and the router
// merges counts, ordered row streams, and aggregate partials back into
// single-store answers.
//
// A three-host cluster with hash partitioning:
//
//	graphjoinrouter -listen :7475 -hosts 10.0.0.1:7474,10.0.0.2:7474,10.0.0.3:7474
//
// Range partitioning needs one boundary per host gap:
//
//	graphjoinrouter -hosts a:7474,b:7474,c:7474 -partition range:1000,2000
//
// Larger topologies read an INI-ish config file (-topology), one section per
// host, with the partition strategy declared up front:
//
//	# cluster.conf
//	partition range 1000 2000
//	[shard-a]
//	addr 10.0.0.1:7474
//	store default
//	[shard-b]
//	addr 10.0.0.2:7474
//	[shard-c]
//	addr 10.0.0.3:7474
//
// With -metrics-addr the router exposes its fan-out instrumentation
// (graphjoinrouter_fanout_width, graphjoinrouter_host_request_seconds,
// graphjoinrouter_straggler_gap_seconds, graphjoinrouter_retries_total)
// alongside the shared serving metrics. The router drains on SIGINT/SIGTERM:
// in-flight fan-outs finish (up to -drain), then the host connections close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/cli"
	"repro/router"
	"repro/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "graphjoinrouter: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen       = flag.String("listen", ":7475", "address to serve the wire protocol on")
		hostsFlag    = flag.String("hosts", "", "comma-separated graphjoind host addresses")
		topology     = flag.String("topology", "", "cluster config file (see the command doc); exclusive with -hosts")
		partition    = flag.String("partition", "hash", "partition strategy: hash | range:B1,B2,... (one boundary per host gap)")
		storeName    = flag.String("store", server.DefaultStore, "store to select on every host")
		serveAs      = flag.String("serve-as", server.DefaultStore, "store name the routed cluster is served under")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-host request timeout (0 = none)")
		retries      = flag.Int("retries", 2, "bounded retries for idempotent reads after a host admission rejection")
		retryBackoff = flag.Duration("retry-backoff", 25*time.Millisecond, "initial backoff between read retries (doubles per attempt)")
		dialAttempts = flag.Int("dial-attempts", 5, "connection attempts per host at startup")
		dialBackoff  = flag.Duration("dial-backoff", 100*time.Millisecond, "initial backoff between dial attempts (doubles per attempt)")
		drain        = flag.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight queries")
		metricsAddr  = flag.String("metrics-addr", "", "HTTP address serving /metrics (Prometheus text) and /healthz; empty disables")
		slowQueryMs  = flag.Int64("slow-query-ms", 0, "log one JSON line per request slower than this many milliseconds (0 disables)")
		slowQueryLg  = flag.String("slow-query-log", "", "file the slow-query lines append to (empty routes them to stderr)")
		traceSample  = flag.Int("trace-sample", 1, "with -slow-query-ms, trace one in N untraced requests so slow-query lines carry span trees")
	)
	flag.Parse()

	specs, part, err := resolveTopology(*hostsFlag, *topology, *partition, *storeName)
	if err != nil {
		return err
	}

	dialCtx, dialCancel := context.WithTimeout(context.Background(), 2*time.Minute)
	r, err := router.Open(dialCtx, specs, router.Config{
		Partitioner:    part,
		RequestTimeout: *reqTimeout,
		MaxRetries:     *retries,
		RetryBackoff:   *retryBackoff,
		DialAttempts:   *dialAttempts,
		DialBackoff:    *dialBackoff,
	})
	dialCancel()
	if err != nil {
		return err
	}
	defer r.Close()

	slowLog, closeSlowLog, err := cli.OpenSlowQueryLog(*slowQueryLg)
	if err != nil {
		return err
	}
	defer closeSlowLog()

	srv := server.New(server.Config{
		Queriers: map[string]repro.Querier{*serveAs: r},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "graphjoinrouter: "+format+"\n", args...)
		},
		Trace: server.TraceConfig{
			SlowQuery:    time.Duration(*slowQueryMs) * time.Millisecond,
			SlowQueryLog: slowLog,
			SampleEvery:  *traceSample,
		},
	})

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	addrs := make([]string, len(specs))
	for i, s := range specs {
		addrs[i] = s.Addr
	}
	fmt.Printf("graphjoinrouter: routing store %s over %d hosts [%s] (%s partitioning) on %s\n",
		*serveAs, len(addrs), strings.Join(addrs, " "), part.Name(), l.Addr())

	// The observability sidecar listener, identical to graphjoind's: the
	// router's fan-out metrics live in the same default registry as the
	// serving metrics of the frontend listener, and the pprof and trace
	// surfaces match the shards'.
	var metricsSrv *http.Server
	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		metricsSrv = &http.Server{Handler: cli.ObservabilityMux(srv.DebugTracesHandler())}
		go func() {
			if err := metricsSrv.Serve(ml); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "graphjoinrouter: metrics server: %v\n", err)
			}
		}()
		fmt.Printf("graphjoinrouter: metrics on http://%s/metrics\n", ml.Addr())
		defer func() {
			closeCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			metricsSrv.Shutdown(closeCtx)
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	select {
	case err := <-serveDone:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("graphjoinrouter: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "graphjoinrouter: drain cut short: %v\n", err)
	}
	if err := <-serveDone; !errors.Is(err, server.ErrServerClosed) {
		return err
	}
	fmt.Println("graphjoinrouter: bye")
	return nil
}

// resolveTopology builds the host list and partitioner from either the
// -hosts/-partition flags or a -topology config file — exactly one of the
// two sources.
func resolveTopology(hostsFlag, topologyPath, partition, storeName string) ([]router.HostSpec, router.Partitioner, error) {
	if (hostsFlag == "") == (topologyPath == "") {
		return nil, nil, fmt.Errorf("exactly one of -hosts or -topology is required")
	}
	if topologyPath != "" {
		return loadTopology(topologyPath)
	}
	var specs []router.HostSpec
	for _, addr := range strings.Split(hostsFlag, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		specs = append(specs, router.HostSpec{Addr: addr, Store: storeName})
	}
	if len(specs) == 0 {
		return nil, nil, fmt.Errorf("-hosts names no addresses")
	}
	part, err := parsePartition(partition)
	if err != nil {
		return nil, nil, err
	}
	return specs, part, nil
}

// parsePartition parses the -partition flag: "hash" or "range:B1,B2,...".
func parsePartition(s string) (router.Partitioner, error) {
	if s == "hash" {
		return router.HashPartitioner(), nil
	}
	if rest, ok := strings.CutPrefix(s, "range:"); ok {
		var bounds []int64
		for _, f := range strings.Split(rest, ",") {
			b, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("-partition range boundary %q: %v", f, err)
			}
			bounds = append(bounds, b)
		}
		if len(bounds) == 0 {
			return nil, fmt.Errorf("-partition range needs at least one boundary")
		}
		return router.RangePartitioner(bounds...), nil
	}
	return nil, fmt.Errorf("unknown -partition %q (want hash or range:B1,B2,...)", s)
}

// loadTopology parses the -topology file: an optional leading
// "partition hash" or "partition range B1 B2 ..." directive, then one
// "[name]" section per host with "addr HOST:PORT" (required) and
// "store NAME" (optional, defaults to the server's default store).
// Blank lines and #-comments are skipped.
func loadTopology(path string) ([]router.HostSpec, router.Partitioner, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	part := router.Partitioner(nil)
	var specs []router.HostSpec
	cur := -1
	for lineNo, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		where := fmt.Sprintf("%s:%d", path, lineNo+1)
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, nil, fmt.Errorf("%s: malformed section header %q", where, line)
			}
			if name := strings.TrimSpace(line[1 : len(line)-1]); name == "" {
				return nil, nil, fmt.Errorf("%s: empty host name", where)
			}
			specs = append(specs, router.HostSpec{Store: server.DefaultStore})
			cur = len(specs) - 1
			continue
		}
		directive, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch directive {
		case "partition":
			if cur >= 0 {
				return nil, nil, fmt.Errorf("%s: partition must precede the host sections", where)
			}
			if part != nil {
				return nil, nil, fmt.Errorf("%s: partition declared twice", where)
			}
			f := strings.Fields(rest)
			switch {
			case len(f) == 1 && f[0] == "hash":
				part = router.HashPartitioner()
			case len(f) >= 2 && f[0] == "range":
				bounds := make([]int64, 0, len(f)-1)
				for _, b := range f[1:] {
					v, err := strconv.ParseInt(b, 10, 64)
					if err != nil {
						return nil, nil, fmt.Errorf("%s: range boundary %q: %v", where, b, err)
					}
					bounds = append(bounds, v)
				}
				part = router.RangePartitioner(bounds...)
			default:
				return nil, nil, fmt.Errorf("%s: partition wants 'hash' or 'range B1 B2 ...'", where)
			}
		case "addr":
			if cur < 0 {
				return nil, nil, fmt.Errorf("%s: addr before the first [host] section", where)
			}
			if specs[cur].Addr != "" {
				return nil, nil, fmt.Errorf("%s: host already has an addr", where)
			}
			specs[cur].Addr = rest
		case "store":
			if cur < 0 {
				return nil, nil, fmt.Errorf("%s: store before the first [host] section", where)
			}
			specs[cur].Store = rest
		default:
			return nil, nil, fmt.Errorf("%s: unknown directive %q", where, directive)
		}
	}
	if len(specs) == 0 {
		return nil, nil, fmt.Errorf("%s: no host sections", path)
	}
	for i, s := range specs {
		if s.Addr == "" {
			return nil, nil, fmt.Errorf("%s: host section %d has no addr", path, i+1)
		}
	}
	if part == nil {
		part = router.HashPartitioner()
	}
	return specs, part, nil
}
