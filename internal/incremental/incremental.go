// Package incremental maintains materialized pattern-count views under
// edge insertions and deletions. The paper motivates LogicBlox's adoption
// of optimal joins partly through incrementally maintained materialized
// views ("LogicBlox encourages the use of materialized views that are
// incrementally maintained", §3, citing Veldhuizen's incremental LFTJ
// [14]); this package implements the classical delta-query approach: a
// join is multilinear in each atom occurrence, so for a relation update
// R → R ∪ Δ (Δ disjoint from R),
//
//	Q(R ∪ Δ) = Σ_{S ⊆ occ(R)} Q[atoms in S ↦ Δ, others ↦ R],
//
// and the count correction is the sum over non-empty S — each term a small
// join evaluated with the worst-case-optimal engine, with the Δ-bound atoms
// keeping every term tiny for selective updates.
//
// Views run on the CSR backend by default: base relations are updated
// through core.DB.ApplyDelta, which folds each batch into the cached CSR
// indexes' delta overlays (relation.Overlay) in time proportional to the
// small log rather than an index rebuild, so the compiled
// delta plans — and the physical indexes they bind — survive arbitrarily
// many batches. Only the tiny Δ relation's atoms are re-bound per batch.
package incremental

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/lftj"
	"repro/internal/query"
	"repro/internal/relation"
)

// deltaSuffix names the temporary delta relations registered in the
// database during a correction pass.
const deltaSuffix = "@delta"

// View is a maintained count of a query over a database. The delta queries
// it evaluates per update batch are planned once: the GAO and the per-mask
// term queries are derived at construction (or on a relation's first
// update), and under the CSR backend the compiled plans themselves are
// cached across batches — ApplyDelta keeps their bound indexes current, so
// per batch only the delta relation's atoms are re-bound.
type View struct {
	q       *query.Query
	db      *core.DB
	backend core.Backend
	count   int64
	gao     []string
	gaoPos  map[string]int
	// occ[rel] lists the atom indices referencing rel.
	occ map[string][]int
	// terms[rel] holds the prepared delta-term queries, one per non-empty
	// occurrence subset, built once per relation.
	terms map[string][]*query.Query
	// plans caches compiled plans per term query (CSR backend only); valid
	// while dbVersion matches the database's mutation counter as tracked
	// through the view's own updates.
	plans     map[*query.Query]*core.Plan
	dbVersion int64
	sc        *core.StatsCollector
}

// NewView computes the initial count and returns the maintained view on the
// default backend.
func NewView(ctx context.Context, q *query.Query, db *core.DB) (*View, error) {
	return NewViewBackend(ctx, q, db, core.DefaultBackend)
}

// NewViewBackend is NewView with an explicit index backend for the delta
// queries. The CSR backend is the fast path (incremental index maintenance
// through delta overlays); flat and csr-sharded re-bind their physical
// indexes per batch and serve as the differential-testing reference.
func NewViewBackend(ctx context.Context, q *query.Query, db *core.DB, backend core.Backend) (*View, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if backend == "" {
		backend = core.DefaultBackend
	}
	gao := q.Vars()
	pos := make(map[string]int, len(gao))
	for i, v := range gao {
		pos[v] = i
	}
	v := &View{
		q:       q,
		db:      db,
		backend: backend,
		gao:     gao,
		gaoPos:  pos,
		occ:     make(map[string][]int),
		terms:   make(map[string][]*query.Query),
		plans:   make(map[*query.Query]*core.Plan),
		sc:      &core.StatsCollector{},
	}
	v.sc.Add(core.Stats{GAODerivations: 1})
	v.dbVersion = db.Version()
	n, err := v.run(ctx, q)
	if err != nil {
		return nil, err
	}
	v.count = n
	for i, a := range q.Atoms {
		v.occ[a.Rel] = append(v.occ[a.Rel], i)
	}
	return v, nil
}

// run evaluates one query (the view query or a delta term) with the
// worst-case-optimal engine under the view's fixed GAO.
func (v *View) run(ctx context.Context, q *query.Query) (int64, error) {
	plan, err := v.planFor(q)
	if err != nil {
		return 0, err
	}
	v.sc.Add(core.Stats{Executions: 1})
	e := lftj.Engine{Opts: lftj.Options{Plan: plan, Stats: v.sc}}
	return e.Count(ctx, q, v.db)
}

// planFor returns a plan for q. Under the CSR backend the base compilation
// is cached across batches (ApplyDelta keeps its bound indexes current in
// place) and only atoms over @delta relations are re-bound; other backends
// recompile per run, because ApplyDelta invalidates their physical indexes.
func (v *View) planFor(q *query.Query) (*core.Plan, error) {
	if v.backend != core.BackendCSR {
		return core.NewPlan(q, v.db, "lftj", v.gao, nil, false, v.backend, v.sc)
	}
	if ver := v.db.Version(); ver != v.dbVersion {
		// The database changed outside this view's own updates; cached
		// plans may bind replaced indexes. Drop and recompile.
		v.plans = make(map[*query.Query]*core.Plan)
		v.dbVersion = ver
	}
	base, ok := v.plans[q]
	if !ok {
		var err error
		base, err = core.NewPlan(q, v.db, "lftj", v.gao, nil, false, v.backend, v.sc)
		if err != nil {
			return nil, err
		}
		v.plans[q] = base
	}
	deltas := 0
	for _, a := range q.Atoms {
		if strings.HasSuffix(a.Rel, deltaSuffix) {
			deltas++
		}
	}
	if deltas == 0 {
		return base, nil
	}
	// The delta relation is re-registered every batch, so its atoms are
	// re-bound on a copy of the cached plan; base-relation bindings carry
	// over untouched.
	cp := *base
	cp.Atoms = append([]core.AtomIndex(nil), base.Atoms...)
	for i, a := range q.Atoms {
		if !strings.HasSuffix(a.Rel, deltaSuffix) {
			continue
		}
		ai, err := core.BindAtom(a, v.db, v.gaoPos, v.backend)
		if err != nil {
			return nil, err
		}
		cp.Atoms[i] = ai
	}
	v.sc.Add(core.Stats{IndexBindings: int64(deltas)})
	return &cp, nil
}

// sync records the database version after one of the view's own mutations,
// so planFor can tell the view's updates apart from external ones.
func (v *View) sync() { v.dbVersion = v.db.Version() }

// Count returns the maintained count.
func (v *View) Count() int64 { return v.count }

// Backend returns the index backend the view's delta queries run on.
func (v *View) Backend() core.Backend { return v.backend }

// Stats returns the view's accumulated planning and execution counters.
// GAODerivations stays at 1 across arbitrarily many update batches — the
// attribute order and term queries are derived once. IndexBindings grows
// only with the delta atoms re-bound per batch (the base relations' CSR
// indexes are maintained in place by ApplyDelta and never re-bound).
func (v *View) Stats() core.Stats { return v.sc.Snapshot() }

// Recount recomputes from scratch (for verification).
func (v *View) Recount(ctx context.Context) (int64, error) {
	return (lftj.Engine{}).Count(ctx, v.q, v.db)
}

// UpdateRelation applies inserts and deletes to one relation and corrects
// the view. Tuples to insert that are already present, and tuples to delete
// that are absent, are ignored.
func (v *View) UpdateRelation(ctx context.Context, rel string, inserts, deletes [][]int64) error {
	occ := v.occ[rel]
	r, err := v.db.Relation(rel)
	if err != nil {
		return err
	}
	if len(occ) == 0 {
		// The view does not depend on this relation; just apply, deletions
		// first so an insert of a just-deleted tuple lands.
		if err := v.db.ApplyDelta(rel, nil, deletes); err != nil {
			v.sync()
			return err
		}
		err := v.db.ApplyDelta(rel, inserts, nil)
		v.sync()
		return err
	}
	// Deletions first: with R' = R \ D registered, the correction terms are
	// evaluated over (R', D).
	dels := filterPresent(r, deletes, true)
	if len(dels) > 0 {
		if err := v.db.ApplyDelta(rel, nil, dels); err != nil {
			return err
		}
		v.sync()
		correction, err := v.deltaTerms(ctx, rel, tuplesToRelation(rel+deltaSuffix, r.Arity(), dels))
		if err != nil {
			// Restore the original relation before surfacing the error.
			restoreErr := v.db.ApplyDelta(rel, dels, nil)
			v.sync()
			if restoreErr != nil {
				return fmt.Errorf("%w (restore failed: %v)", err, restoreErr)
			}
			return err
		}
		v.count -= correction
		if r, err = v.db.Relation(rel); err != nil {
			return err
		}
	}
	// Insertions: correction terms are evaluated over the pre-insert R.
	ins := filterPresent(r, inserts, false)
	if len(ins) > 0 {
		correction, err := v.deltaTerms(ctx, rel, tuplesToRelation(rel+deltaSuffix, r.Arity(), ins))
		if err != nil {
			return err
		}
		v.count += correction
		if err := v.db.ApplyDelta(rel, ins, nil); err != nil {
			return err
		}
		v.sync()
	}
	return nil
}

// deltaTerms sums Q[S ↦ Δ, rest ↦ current] over non-empty S ⊆ occ(rel),
// executing each term's prepared query. Term construction and planning
// happen once per relation; per batch only the delta indexes are re-bound.
func (v *View) deltaTerms(ctx context.Context, rel string, delta *relation.Relation) (int64, error) {
	v.db.Add(delta)
	v.sync()
	terms, err := v.termQueries(rel)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, term := range terms {
		n, err := v.run(ctx, term)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// termQueries returns the delta-term queries for one relation, building and
// caching them on first use.
func (v *View) termQueries(rel string) ([]*query.Query, error) {
	if terms, ok := v.terms[rel]; ok {
		return terms, nil
	}
	occ := v.occ[rel]
	if len(occ) > 20 {
		return nil, fmt.Errorf("incremental: %d occurrences of %s exceeds the subset budget", len(occ), rel)
	}
	terms := make([]*query.Query, 0, 1<<uint(len(occ))-1)
	for mask := 1; mask < 1<<uint(len(occ)); mask++ {
		atoms := make([]query.Atom, len(v.q.Atoms))
		copy(atoms, v.q.Atoms)
		for bit, ai := range occ {
			if mask&(1<<uint(bit)) != 0 {
				atoms[ai] = query.Atom{Rel: rel + deltaSuffix, Vars: atoms[ai].Vars}
			}
		}
		terms = append(terms, query.New(v.q.Name+"/delta", atoms...))
	}
	v.terms[rel] = terms
	return terms, nil
}

// filterPresent returns the tuples whose presence in r equals want.
func filterPresent(r *relation.Relation, tuples [][]int64, want bool) [][]int64 {
	var out [][]int64
	seen := make(map[string]bool)
	for _, t := range tuples {
		if r.Contains(t) != want {
			continue
		}
		k := relation.TupleKey(t)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, t)
	}
	return out
}

func tuplesToRelation(name string, arity int, tuples [][]int64) *relation.Relation {
	b := relation.NewBuilder(name, arity)
	for _, t := range tuples {
		b.Add(t...)
	}
	return b.Build()
}

// GraphView maintains a pattern count over the benchmark graph schema: an
// undirected edge update touches both the symmetric "edge" relation and the
// oriented "fwd" relation.
type GraphView struct {
	*View
}

// NewGraphView builds a maintained view over the graph schema on the
// default backend.
func NewGraphView(ctx context.Context, q *query.Query, db *core.DB) (*GraphView, error) {
	return NewGraphViewBackend(ctx, q, db, core.DefaultBackend)
}

// NewGraphViewBackend is NewGraphView with an explicit index backend.
func NewGraphViewBackend(ctx context.Context, q *query.Query, db *core.DB, backend core.Backend) (*GraphView, error) {
	v, err := NewViewBackend(ctx, q, db, backend)
	if err != nil {
		return nil, err
	}
	return &GraphView{View: v}, nil
}

// ApplyEdges inserts and removes undirected edges, updating both derived
// relations and the count.
func (g *GraphView) ApplyEdges(ctx context.Context, insert, remove [][2]int64) error {
	symIns, symDel := Orient(insert, false), Orient(remove, false)
	fwdIns, fwdDel := Orient(insert, true), Orient(remove, true)
	if err := g.UpdateRelation(ctx, query.Edge, symIns, symDel); err != nil {
		return err
	}
	return g.UpdateRelation(ctx, query.Fwd, fwdIns, fwdDel)
}

// Orient turns undirected edges into benchmark-schema tuples: both
// directions for the symmetric "edge" relation, or just the u<v orientation
// for "fwd" (fwdOnly). Self-loops are dropped. Every write path that keeps
// the benchmark schema's invariants — this view's ApplyEdges and the public
// Graph.ApplyEdges — routes through it.
func Orient(edges [][2]int64, fwdOnly bool) [][]int64 {
	var out [][]int64
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		out = append(out, []int64{u, v})
		if !fwdOnly {
			out = append(out, []int64{v, u})
		}
	}
	return out
}
