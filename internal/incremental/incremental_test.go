package incremental

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/testutil"
)

func TestTriangleViewInsert(t *testing.T) {
	ctx := context.Background()
	// Path 0-1-2: no triangles; inserting 0-2 closes one.
	db := testutil.GraphDB([][2]int64{{0, 1}, {1, 2}}, nil)
	v, err := NewGraphView(ctx, query.Clique(3), db)
	if err != nil {
		t.Fatal(err)
	}
	if v.Count() != 0 {
		t.Fatalf("initial count = %d, want 0", v.Count())
	}
	if err := v.ApplyEdges(ctx, [][2]int64{{0, 2}}, nil); err != nil {
		t.Fatal(err)
	}
	if v.Count() != 1 {
		t.Errorf("after closing the triangle: count = %d, want 1", v.Count())
	}
	if err := v.ApplyEdges(ctx, nil, [][2]int64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if v.Count() != 0 {
		t.Errorf("after removing an edge: count = %d, want 0", v.Count())
	}
}

func TestDuplicateAndMissingUpdatesIgnored(t *testing.T) {
	ctx := context.Background()
	db := testutil.GraphDB(testutil.K4, nil)
	v, err := NewGraphView(ctx, query.Clique(3), db)
	if err != nil {
		t.Fatal(err)
	}
	base := v.Count()
	// Re-inserting an existing edge and deleting a non-edge are no-ops.
	if err := v.ApplyEdges(ctx, [][2]int64{{0, 1}}, [][2]int64{{0, 9}}); err != nil {
		t.Fatal(err)
	}
	if v.Count() != base {
		t.Errorf("no-op update changed count: %d -> %d", base, v.Count())
	}
}

// TestRandomChurn applies random edge insertions/deletions and checks the
// maintained count against a full recount after every batch, across query
// shapes (including multi-occurrence self-joins, the inclusion-exclusion
// stress case).
func TestRandomChurn(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))
	queries := []*query.Query{query.Clique(3), query.Clique(4), query.Path(3), query.Comb(), query.Cycle(4)}
	for _, q := range queries {
		db := testutil.RandomGraphDB(rng, 12, 30, 2)
		v, err := NewGraphView(ctx, q, db)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 12; step++ {
			var ins, del [][2]int64
			for k := 0; k < 1+rng.Intn(3); k++ {
				e := [2]int64{int64(rng.Intn(12)), int64(rng.Intn(12))}
				if e[0] == e[1] {
					continue
				}
				if rng.Intn(2) == 0 {
					ins = append(ins, e)
				} else {
					del = append(del, e)
				}
			}
			if err := v.ApplyEdges(ctx, ins, del); err != nil {
				t.Fatal(err)
			}
			want, err := v.Recount(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if v.Count() != want {
				t.Fatalf("%s step %d: maintained = %d, recount = %d (ins=%v del=%v)",
					q.Name, step, v.Count(), want, ins, del)
			}
		}
	}
}

func TestUnreferencedRelation(t *testing.T) {
	ctx := context.Background()
	db := testutil.GraphDB(testutil.K4, map[string][]int64{query.Sample1: {0}})
	v, err := NewView(ctx, query.Clique(3), db) // uses fwd only
	if err != nil {
		t.Fatal(err)
	}
	base := v.Count()
	// Updating v1 (not referenced by the clique query) must not change the
	// count but must update the relation.
	if err := v.UpdateRelation(ctx, query.Sample1, [][]int64{{3}}, nil); err != nil {
		t.Fatal(err)
	}
	if v.Count() != base {
		t.Errorf("count changed on unreferenced update")
	}
	r, err := db.Relation(query.Sample1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Errorf("v1 size = %d, want 2", r.Len())
	}
}

func TestViewValidation(t *testing.T) {
	ctx := context.Background()
	db := testutil.GraphDB(testutil.K4, nil)
	if _, err := NewView(ctx, query.New("empty"), db); err == nil {
		t.Error("empty query should fail")
	}
}
