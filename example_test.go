package repro_test

import (
	"context"
	"errors"
	"fmt"

	"repro"
)

// ExampleGraph_Prepare shows the prepare-once / execute-repeatedly
// lifecycle: the query is compiled against the graph's physical design
// (GAO fixed, GAO-consistent indexes bound) and then executed as pure
// plan evaluation.
func ExampleGraph_Prepare() {
	// A triangle 0-1-2 with a pendant edge 2-3.
	g := repro.NewGraph([][2]int64{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	p, err := g.Prepare(repro.Triangles(), repro.Options{Algorithm: "lftj"})
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	n, err := p.Count(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Println("triangles:", n)
	fmt.Println("engine:", p.Algorithm())
	// Output:
	// triangles: 1
	// engine: lftj
}

// ExamplePrepared_Rows streams result tuples through a Go 1.23 range-over-
// func iterator; breaking out of the loop stops the join early.
func ExamplePrepared_Rows() {
	g := repro.NewGraph([][2]int64{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 3}})
	p, err := g.Prepare(repro.Triangles(), repro.Options{})
	if err != nil {
		panic(err)
	}
	for row := range p.Rows(context.Background()) {
		fmt.Println(row) // bindings in q.Vars() order: a, b, c
	}
	// Output:
	// [0 1 2]
	// [1 2 3]
}

// ExampleOptions_backend selects the physical index backend: "csr" (the
// default) serves prepared queries from materialized CSR trie levels,
// "csr-sharded" additionally partitions each first-attribute trie so the
// parallel Count path binds one disjoint shard per worker job, and "flat"
// is the zero-memory reference. All three produce identical results.
func ExampleOptions_backend() {
	g := repro.NewGraph([][2]int64{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {1, 3}})
	ctx := context.Background()
	for _, backend := range []repro.Backend{repro.BackendFlat, repro.BackendCSR, repro.BackendCSRSharded} {
		p, err := g.Prepare(repro.Triangles(), repro.Options{Algorithm: "lftj", Backend: backend})
		if err != nil {
			panic(err)
		}
		n, err := p.Count(ctx)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-11s -> %d triangles (plan backend %s)\n", backend, n, p.Explain().Backend)
	}
	// Output:
	// flat        -> 2 triangles (plan backend flat)
	// csr         -> 2 triangles (plan backend csr)
	// csr-sharded -> 2 triangles (plan backend csr-sharded)
}

// ExampleMaintainCount keeps a pattern count current under edge updates
// with delta queries (§3's incrementally maintained materialized views).
// On the default CSR backend each batch lands in the cached indexes' delta
// overlays — the compiled delta plans and their physical indexes survive
// every batch.
func ExampleMaintainCount() {
	g := repro.NewGraph([][2]int64{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	ctx := context.Background()
	v, err := repro.MaintainCount(ctx, g, repro.Triangles())
	if err != nil {
		panic(err)
	}
	fmt.Println("square:", v.Count())

	// Close one diagonal: two triangles appear.
	if err := v.ApplyEdges(ctx, [][2]int64{{0, 2}}, nil); err != nil {
		panic(err)
	}
	fmt.Println("with diagonal:", v.Count())

	// Remove an outer edge: one of them goes away.
	if err := v.ApplyEdges(ctx, nil, [][2]int64{{0, 1}}); err != nil {
		panic(err)
	}
	fmt.Println("edge removed:", v.Count())
	// Output:
	// square: 0
	// with diagonal: 2
	// edge removed: 1
}

// ExampleStore defines a general schema — a directed, edge-labeled social
// graph as one relation per label, something the benchmark Graph cannot
// express — loads it, and queries it with schema-checked parsing. A rule
// head ("closed(c, b, a) :- ...") names the query and fixes the output
// variable order.
func ExampleStore() {
	s := repro.NewStore()
	for _, rel := range []string{"follows", "likes"} {
		if err := s.DefineRelation(rel, 2); err != nil {
			panic(err)
		}
	}
	// follows is directed: a cycle 0→1→2→0 plus 2→3.
	if err := s.Load("follows", [][]int64{{0, 1}, {1, 2}, {2, 0}, {2, 3}}); err != nil {
		panic(err)
	}
	if err := s.Load("likes", [][]int64{{2, 0}, {3, 1}}); err != nil {
		panic(err)
	}

	// Directed 2-hop follows chains closed by a like back to the start.
	q, err := s.ParseQuery("closed", "follows(a,b), follows(b,c), likes(c,a)")
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	n, err := s.Count(ctx, q, repro.Options{Workers: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("closed patterns:", n)

	// The schema is checked at parse time, with typed errors.
	_, err = s.ParseQuery("bad", "follows(a,b,c)")
	fmt.Println("arity mismatch caught:", errors.Is(err, repro.ErrArityMismatch))
	// Output:
	// closed patterns: 2
	// arity mismatch caught: true
}

// ExampleStore_ReadTxn pins one index snapshot across several executions:
// both reads inside the transaction agree even though a write lands between
// them, while a fresh transaction observes the new state.
func ExampleStore_ReadTxn() {
	s := repro.NewStore()
	if err := s.DefineRelation("e", 2); err != nil {
		panic(err)
	}
	if err := s.Load("e", [][]int64{{0, 1}, {1, 2}, {2, 3}}); err != nil {
		panic(err)
	}
	q, err := s.ParseQuery("p2", "e(a,b), e(b,c)")
	if err != nil {
		panic(err)
	}
	p, err := s.Prepare(q, repro.Options{Workers: 1})
	if err != nil {
		panic(err)
	}

	ctx := context.Background()
	txn := s.ReadTxn()
	before, _ := txn.Count(ctx, p)

	// A concurrent writer extends the chain mid-transaction.
	if err := s.Apply("e", [][]int64{{3, 4}}, nil); err != nil {
		panic(err)
	}

	again, _ := txn.Count(ctx, p)
	fresh, _ := s.ReadTxn().Count(ctx, p)
	fmt.Println("txn reads agree:", before == again)
	fmt.Println("fresh txn sees the write:", fresh == before+1)
	// Output:
	// txn reads agree: true
	// fresh txn sees the write: true
}

// ExampleStore_projection shows a projecting rule head: only the named
// variables are emitted, in head order, with duplicates eliminated inside
// the join rather than in a post-pass.
func ExampleStore_projection() {
	s := repro.NewStore()
	if err := s.DefineRelation("edge", 2); err != nil {
		panic(err)
	}
	// A diamond: 0 reaches 3 along two paths.
	if err := s.Load("edge", [][]int64{{0, 1}, {0, 2}, {1, 3}, {2, 3}}); err != nil {
		panic(err)
	}
	// Without the head this join has two results (one per middle node);
	// the projection collapses them to the distinct (start, end) pairs.
	q, err := s.ParseQuery("reach2", "reach2(a, c) :- edge(a, b), edge(b, c)")
	if err != nil {
		panic(err)
	}
	p, err := s.Prepare(q, repro.Options{Workers: 1})
	if err != nil {
		panic(err)
	}
	for row := range p.Rows(context.Background()) {
		fmt.Println(row)
	}
	// Output:
	// [0 3]
}

// ExampleStore_aggregation shows a streaming group-by: aggregate head
// terms fold count/sum/min/max per group as rows stream out of the join
// in grouped order — no materialization. A comparison predicate filters
// the matched bindings first, pushed into the index as a seek bound.
func ExampleStore_aggregation() {
	s := repro.NewStore()
	if err := s.DefineRelation("sale", 2); err != nil {
		panic(err)
	}
	// (customer, amount) purchase facts.
	if err := s.Load("sale", [][]int64{
		{1, 30}, {1, 70}, {2, 5}, {2, 40}, {2, 90}, {3, 8},
	}); err != nil {
		panic(err)
	}
	q, err := s.ParseQuery("spend",
		"spend(c, count(v), sum(v), max(v)) :- sale(c, v), v >= 10")
	if err != nil {
		panic(err)
	}
	p, err := s.Prepare(q, repro.Options{Workers: 1})
	if err != nil {
		panic(err)
	}
	for row := range p.Rows(context.Background()) {
		fmt.Printf("customer %d: n=%d total=%d max=%d\n", row[0], row[1], row[2], row[3])
	}
	// Output:
	// customer 1: n=2 total=100 max=70
	// customer 2: n=2 total=130 max=90
}
