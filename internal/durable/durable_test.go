package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
)

func openT(t *testing.T, dir string, opts Options) (*Manager, *Recovered) {
	t.Helper()
	m, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return m, rec
}

func appendCommit(t *testing.T, m *Manager, op byte, i int) uint64 {
	t.Helper()
	var lsn uint64
	var err error
	switch op {
	case OpDefine:
		lsn, err = m.AppendDefine(fmt.Sprintf("r%d", i), 2)
	case OpLoad:
		lsn, err = m.AppendLoad("e", [][]int64{{int64(i), int64(i + 1)}})
	case OpDeltas:
		lsn, err = m.AppendDeltas([]core.DeltaBatch{{
			Name:    "e",
			Inserts: [][]int64{{int64(i), 0}},
			Deletes: [][]int64{{0, int64(i)}},
		}})
	}
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := m.Commit(lsn); err != nil {
		t.Fatalf("commit %d: %v", lsn, err)
	}
	return lsn
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, rec := openT(t, dir, Options{})
	if rec.LastLSN != 0 || len(rec.Records) != 0 || rec.TailErr != nil {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	appendCommit(t, m, OpDefine, 0)
	appendCommit(t, m, OpLoad, 1)
	appendCommit(t, m, OpDeltas, 2)
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	m2, rec2 := openT(t, dir, Options{})
	defer m2.Close()
	if rec2.LastLSN != 3 {
		t.Fatalf("LastLSN = %d, want 3", rec2.LastLSN)
	}
	if len(rec2.Records) != 3 {
		t.Fatalf("recovered %d records, want 3", len(rec2.Records))
	}
	r := rec2.Records[0]
	if r.Op != OpDefine || r.Name != "r0" || r.Arity != 2 || r.LSN != 1 {
		t.Fatalf("record 0 = %+v", r)
	}
	r = rec2.Records[1]
	if r.Op != OpLoad || r.Name != "e" || len(r.Tuples) != 1 || r.Tuples[0][0] != 1 {
		t.Fatalf("record 1 = %+v", r)
	}
	r = rec2.Records[2]
	if r.Op != OpDeltas || len(r.Batches) != 1 || r.Batches[0].Name != "e" ||
		len(r.Batches[0].Inserts) != 1 || len(r.Batches[0].Deletes) != 1 {
		t.Fatalf("record 2 = %+v", r)
	}
	// Appends resume contiguously after recovery.
	lsn, err := m2.AppendDefine("r9", 3)
	if err != nil || lsn != 4 {
		t.Fatalf("post-recovery append LSN = %d, %v; want 4", lsn, err)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	m, _ := openT(t, dir, Options{Sync: SyncGroup})
	const writers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				lsn, err := m.AppendDeltas([]core.DeltaBatch{{Name: "e", Inserts: [][]int64{{int64(w), int64(i)}}}})
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := m.Commit(lsn); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := m.LastLSN(); got != writers*each {
		t.Fatalf("LastLSN = %d, want %d", got, writers*each)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	m2, rec := openT(t, dir, Options{})
	defer m2.Close()
	if rec.LastLSN != writers*each || len(rec.Records) != writers*each {
		t.Fatalf("recovered LastLSN=%d records=%d, want %d", rec.LastLSN, len(rec.Records), writers*each)
	}
}

func TestCheckpointPrunesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	m, _ := openT(t, dir, Options{Sync: SyncNone})
	for i := 0; i < 10; i++ {
		appendCommit(t, m, OpDeltas, i)
	}
	rel := relation.FromTuples("e", 2, [][]int64{{1, 2}, {3, 4}})
	if err := m.Checkpoint(10, []*relation.Relation{rel}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Records after the checkpoint replay on top of the snapshot.
	appendCommit(t, m, OpDeltas, 100)
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	m2, rec := openT(t, dir, Options{})
	if rec.SnapshotLSN != 10 {
		t.Fatalf("SnapshotLSN = %d, want 10", rec.SnapshotLSN)
	}
	if len(rec.Relations) != 1 || rec.Relations[0].Name != "e" || len(rec.Relations[0].Tuples) != 2 {
		t.Fatalf("snapshot relations = %+v", rec.Relations)
	}
	if len(rec.Records) != 1 || rec.Records[0].LSN != 11 {
		t.Fatalf("post-snapshot records = %+v", rec.Records)
	}
	// A second checkpoint supersedes the first snapshot and the old segments.
	if err := m2.Checkpoint(11, []*relation.Relation{rel}); err != nil {
		t.Fatalf("checkpoint 2: %v", err)
	}
	if err := m2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	snaps, _ := listSnapshots(dir)
	if len(snaps) != 1 {
		t.Fatalf("snapshots after prune = %v, want 1", snaps)
	}
	m3, rec3 := openT(t, dir, Options{})
	defer m3.Close()
	if rec3.SnapshotLSN != 11 || len(rec3.Records) != 0 || rec3.LastLSN != 11 {
		t.Fatalf("after 2nd checkpoint: %+v", rec3)
	}
}

func TestTornTailTolerated(t *testing.T) {
	for _, cut := range []int{1, 3, 7} { // bytes chopped off the tail
		dir := t.TempDir()
		m, _ := openT(t, dir, Options{})
		for i := 0; i < 5; i++ {
			appendCommit(t, m, OpDeltas, i)
		}
		m.Close()

		segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
		if len(segs) != 1 {
			t.Fatalf("segments = %v", segs)
		}
		info, _ := os.Stat(segs[0])
		if err := os.Truncate(segs[0], info.Size()-int64(cut)); err != nil {
			t.Fatal(err)
		}

		m2, rec := openT(t, dir, Options{})
		if rec.TailErr == nil || !errors.Is(rec.TailErr, ErrCorruptLog) {
			t.Fatalf("cut %d: TailErr = %v, want ErrCorruptLog", cut, rec.TailErr)
		}
		if rec.LastLSN != 4 || len(rec.Records) != 4 {
			t.Fatalf("cut %d: LastLSN=%d records=%d, want 4", cut, rec.LastLSN, len(rec.Records))
		}
		// The torn tail is gone for good: appends extend valid history and a
		// clean reopen sees no corruption.
		lsn := appendCommit(t, m2, OpDeltas, 99)
		if lsn != 5 {
			t.Fatalf("cut %d: append after truncation LSN = %d, want 5", cut, lsn)
		}
		m2.Close()
		m3, rec3 := openT(t, dir, Options{})
		if rec3.TailErr != nil || rec3.LastLSN != 5 {
			t.Fatalf("cut %d: reopen after repair: %+v", cut, rec3)
		}
		m3.Close()
	}
}

func TestCorruptBodyTolerated(t *testing.T) {
	dir := t.TempDir()
	m, _ := openT(t, dir, Options{})
	for i := 0; i < 3; i++ {
		appendCommit(t, m, OpDeltas, i)
	}
	m.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // flip a bit inside the last record's body
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	m2, rec := openT(t, dir, Options{})
	defer m2.Close()
	if !errors.Is(rec.TailErr, ErrCorruptLog) {
		t.Fatalf("TailErr = %v, want ErrCorruptLog", rec.TailErr)
	}
	if rec.LastLSN != 2 || len(rec.Records) != 2 {
		t.Fatalf("LastLSN=%d records=%d, want 2", rec.LastLSN, len(rec.Records))
	}
}

func TestSnapshotCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	m, _ := openT(t, dir, Options{Sync: SyncNone})
	rel := relation.FromTuples("e", 2, [][]int64{{1, 2}})
	appendCommit(t, m, OpDeltas, 0)
	if err := m.Checkpoint(1, []*relation.Relation{rel}); err != nil {
		t.Fatal(err)
	}
	appendCommit(t, m, OpDeltas, 1)
	rel2 := relation.FromTuples("e", 2, [][]int64{{1, 2}, {3, 4}, {5, 6}})
	if err := m.Checkpoint(2, []*relation.Relation{rel2}); err != nil {
		t.Fatal(err)
	}
	// Resurrect an older snapshot alongside, then corrupt the newest.
	snaps, _ := listSnapshots(dir)
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %v", snaps)
	}
	old := snapPath(dir, 1)
	if _, err := writeSnapshot(dir, 1, []*relation.Relation{rel}); err != nil {
		t.Fatal(err)
	}
	newest := snapPath(dir, 2)
	data, _ := os.ReadFile(newest)
	data[len(data)-1] ^= 0xff
	os.WriteFile(newest, data, 0o644)
	m.Close()

	// No record with LSN 2 survives in the log (checkpoint 2 pruned it), so
	// falling back to snapshot 1 must fail the LSN-contiguity check rather
	// than silently lose the update — unless the log still covers it. Here
	// segments after checkpoint 2 start at LSN 3, so expect a gap error.
	_, _, err := Open(dir, Options{})
	if err == nil || !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("Open with newest snapshot corrupt and history pruned: err = %v, want ErrCorruptLog", err)
	}
	_ = old
}

func TestChunkCutsAlignFirstAttribute(t *testing.T) {
	// 3 distinct first attributes, each with enough rows to span chunks.
	var tuples [][]int64
	for a := int64(0); a < 3; a++ {
		for b := int64(0); b < snapChunkRows; b++ {
			tuples = append(tuples, []int64{a, b})
		}
	}
	r := relation.FromTuples("e", 2, tuples)
	cuts := chunkCuts(r)
	if len(cuts) < 3 {
		t.Fatalf("cuts = %v, want multiple chunks", cuts)
	}
	for _, c := range cuts[1 : len(cuts)-1] {
		if r.Value(c-1, 0) == r.Value(c, 0) {
			t.Fatalf("cut at %d splits first-attribute group %d", c, r.Value(c, 0))
		}
	}
	if cuts[len(cuts)-1] != r.Len() {
		t.Fatalf("last cut %d != Len %d", cuts[len(cuts)-1], r.Len())
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"": SyncGroup, "group": SyncGroup, "always": SyncAlways, "none": SyncNone} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("fsync"); err == nil {
		t.Fatal("ParsePolicy accepted junk")
	}
}
