// Package router is the distributed query fabric: a coordinator that fans
// prepared queries out over multiple graphjoind hosts and merges their
// answers, behind the same repro.Querier seam the in-process store
// (repro.Local) and the single-host client (client.Dial) implement — so code
// written against Querier flips between embedded, client/server, and
// clustered deployment with one constructor change:
//
//	q := repro.Local(store)                      // in-process
//	q, err := client.Dial(ctx, "db-host:7474")   // one remote host
//	q, err := router.Open(ctx, hosts, cfg)       // a cluster
//
// # Replicated storage, partitioned execution
//
// Writes (DefineRelation, Load, Apply, ApplyAll) broadcast to every host, so
// each host holds the full database. Queries partition the other axis: the
// execution's output space is split on the leading attribute of the query's
// global attribute order (the same first-variable axis the §4.10 parallel
// jobs split in-process), each host runs its shard of the plan against its
// full local indexes, and the router merges — counts by summation, ordered
// row streams by a k-way merge on the leading attribute, global aggregates
// by folding per-host partials. Replication is what makes the per-host
// execution self-contained: a multi-atom join binds non-leading atoms at
// arbitrary values, so owner-only storage would need a data exchange per
// join level; replicating the (small, paper-scale) database trades disk for
// zero cross-host data movement at query time. Partitioning only the leading
// attribute keeps every merge deterministic: shards of either strategy are
// disjoint and cover the domain, so the merged stream is byte-identical to a
// single store's.
//
// # Consistency
//
// Fan-out reads open a snapshot lease on every host before executing (an
// internal distributed read-transaction), and lease openings are serialized
// against broadcast writes by the router's lock — every host's snapshot
// therefore reflects the same prefix of the router's write sequence, and a
// merged result never mixes write generations. ReadTxn exposes the same
// mechanism to callers, pinning all hosts for the transaction's life.
// Broadcast writes are not atomic across hosts: a mid-broadcast failure
// (reported as a *HostError) can leave the failed host behind until an
// operator restores it.
//
// # Failure
//
// Every cross-host failure is a *HostError naming the host; errors.Is and
// errors.As see through it to the typed sentinels (client.ErrOverloaded,
// repro.ErrUnknownRelation, ...). Idempotent unary reads retry with backoff
// on admission rejections; streams do not retry — a host lost mid-stream
// fails the merged stream with a typed error instead of silently truncating
// it.
package router

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"
	"time"

	"repro"
	"repro/client"
	"repro/internal/query"
)

// ErrClosed reports an operation on a closed router.
var ErrClosed = errors.New("router: closed")

// HostError is a failure scoped to one cluster host. Unwrap exposes the
// underlying cause, so errors.Is sees through to the typed sentinels.
type HostError struct {
	// Host is the failing host's label (its address, or the label given to
	// New).
	Host string
	// Index is the host's position in the cluster topology.
	Index int
	// Err is the underlying failure.
	Err error
}

func (e *HostError) Error() string {
	return fmt.Sprintf("router: host %d (%s): %v", e.Index, e.Host, e.Err)
}

func (e *HostError) Unwrap() error { return e.Err }

// HostSpec names one cluster host for Open.
type HostSpec struct {
	// Addr is the host's graphjoind address.
	Addr string
	// Store selects a named store on a multi-tenant host ("" means the
	// server default).
	Store string
}

// Config configures a Router.
type Config struct {
	// Partitioner splits the leading-attribute domain across the hosts.
	// Nil defaults to HashPartitioner().
	Partitioner Partitioner
	// RequestTimeout bounds each per-host unary request (counts, lease
	// opens, schema operations). Zero means no bound. Streams are governed
	// by the caller's context instead — a dead host still fails them
	// promptly through the transport.
	RequestTimeout time.Duration
	// MaxRetries is how many times an idempotent unary read is retried
	// after a host admission rejection (client.ErrOverloaded). Zero
	// disables retries.
	MaxRetries int
	// RetryBackoff is the first retry's backoff, doubling per attempt.
	// Zero defaults to 25ms.
	RetryBackoff time.Duration
	// DialAttempts and DialBackoff configure Open's per-host dial retry
	// (client.WithDialRetry) — a cluster's hosts rarely boot atomically.
	DialAttempts int
	DialBackoff  time.Duration
}

// Router coordinates a cluster of hosts behind the repro.Querier seam.
// Create one with Open (dialing graphjoind hosts) or New (over any Querier
// values, e.g. in-process stores in tests). Safe for concurrent use.
type Router struct {
	hosts []repro.Querier
	names []string
	part  Partitioner

	reqTimeout   time.Duration
	maxRetries   int
	retryBackoff time.Duration
	ownsHosts    bool

	met *routerMetrics

	// mu serializes broadcast writes (Lock) against snapshot-lease openings
	// (RLock): a fan-out read's per-host leases are opened with no write in
	// flight, so every host pins the same write prefix.
	mu     sync.RWMutex
	closed bool
}

var _ repro.Querier = (*Router)(nil)

// Open dials every host and returns a router over the cluster. On any dial
// failure the already-opened connections are closed and a *HostError
// identifies the unreachable host. Closing the router closes the
// connections.
func Open(ctx context.Context, hosts []HostSpec, cfg Config) (*Router, error) {
	conns := make([]repro.Querier, 0, len(hosts))
	names := make([]string, 0, len(hosts))
	fail := func(i int, err error) (*Router, error) {
		for _, c := range conns {
			c.Close()
		}
		return nil, &HostError{Host: hosts[i].Addr, Index: i, Err: err}
	}
	for i, h := range hosts {
		opts := []client.Option{client.WithStore(h.Store)}
		if cfg.RequestTimeout > 0 {
			opts = append(opts, client.WithRequestTimeout(cfg.RequestTimeout))
		}
		if cfg.DialAttempts > 1 {
			opts = append(opts, client.WithDialRetry(cfg.DialAttempts, cfg.DialBackoff))
		}
		c, err := client.Dial(ctx, h.Addr, opts...)
		if err != nil {
			return fail(i, err)
		}
		conns = append(conns, c)
		name := h.Addr
		if h.Store != "" {
			name += "/" + h.Store
		}
		names = append(names, name)
	}
	r, err := New(conns, names, cfg)
	if err != nil {
		for _, c := range conns {
			c.Close()
		}
		return nil, err
	}
	r.ownsHosts = true
	return r, nil
}

// New returns a router over already-constructed queriers — remote clients,
// in-process stores wrapped with repro.Local, or a mix. labels names each
// host for errors and metrics (nil derives "host-0", "host-1", ...). The
// router does not close the queriers unless it dialed them itself (Open).
func New(hosts []repro.Querier, labels []string, cfg Config) (*Router, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("router: at least one host required")
	}
	if labels == nil {
		labels = make([]string, len(hosts))
		for i := range labels {
			labels[i] = fmt.Sprintf("host-%d", i)
		}
	}
	if len(labels) != len(hosts) {
		return nil, fmt.Errorf("router: %d hosts but %d labels", len(hosts), len(labels))
	}
	part := cfg.Partitioner
	if part == nil {
		part = HashPartitioner()
	}
	// Validate the partitioner against the host count eagerly — a range
	// partitioner with the wrong boundary count should fail at construction,
	// not at the first fan-out.
	if _, err := part.Shards(len(hosts)); err != nil {
		return nil, err
	}
	backoff := cfg.RetryBackoff
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}
	return &Router{
		hosts:        hosts,
		names:        append([]string(nil), labels...),
		part:         part,
		reqTimeout:   cfg.RequestTimeout,
		maxRetries:   cfg.MaxRetries,
		retryBackoff: backoff,
		met:          newRouterMetrics(labels),
	}, nil
}

// Hosts returns the cluster's host labels in topology order.
func (r *Router) Hosts() []string { return append([]string(nil), r.names...) }

// hostErr wraps a failure with its host's identity.
func (r *Router) hostErr(i int, err error) error {
	if err == nil {
		return nil
	}
	return &HostError{Host: r.names[i], Index: i, Err: err}
}

// Close closes the router; connections it dialed itself (Open) are closed
// too. Safe to call repeatedly.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	var first error
	if r.ownsHosts {
		for i, h := range r.hosts {
			if err := h.Close(); err != nil && first == nil {
				first = r.hostErr(i, err)
			}
		}
	}
	return first
}

// broadcast runs one write on every host in parallel under the write lock,
// so no snapshot lease can open against a half-applied broadcast. The first
// per-host failure is returned as a *HostError; a mid-broadcast failure can
// leave hosts diverged (see the package comment on write atomicity).
func (r *Router) broadcast(f func(h repro.Querier) error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	errs := make([]error, len(r.hosts))
	var wg sync.WaitGroup
	for i, h := range r.hosts {
		wg.Add(1)
		go func(i int, h repro.Querier) {
			defer wg.Done()
			errs[i] = f(h)
		}(i, h)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return r.hostErr(i, err)
		}
	}
	return nil
}

// DefineRelation declares the relation on every host.
func (r *Router) DefineRelation(name string, arity int) error {
	return r.broadcast(func(h repro.Querier) error { return h.DefineRelation(name, arity) })
}

// Load replaces the relation's contents on every host.
func (r *Router) Load(name string, tuples [][]int64) error {
	return r.broadcast(func(h repro.Querier) error { return h.Load(name, tuples) })
}

// Apply applies the update batch on every host.
func (r *Router) Apply(name string, inserts, deletes [][]int64) error {
	return r.broadcast(func(h repro.Querier) error { return h.Apply(name, inserts, deletes) })
}

// ApplyAll applies the multi-relation batch on every host.
func (r *Router) ApplyAll(batches map[string][]repro.Delta) error {
	return r.broadcast(func(h repro.Querier) error { return h.ApplyAll(batches) })
}

// Relations returns the schema listing. The schema is replicated, so any
// host answers identically; a host with a failed connection (nil listing)
// is skipped so metadata stays available while a shard is down.
func (r *Router) Relations() []string {
	for _, h := range r.hosts {
		if names := h.Relations(); names != nil {
			return names
		}
	}
	return nil
}

// Arity returns the relation's arity, falling back across hosts so a dead
// shard does not take the metadata surface down with it.
func (r *Router) Arity(name string) (int, error) {
	var err error
	for _, h := range r.hosts {
		var n int
		if n, err = h.Arity(name); err == nil {
			return n, nil
		}
		if errors.Is(err, repro.ErrUnknownRelation) {
			return 0, err
		}
	}
	return 0, err
}

// Schema returns the schema listing, falling back across hosts.
func (r *Router) Schema(ctx context.Context) ([]repro.RelationInfo, error) {
	var err error
	for _, h := range r.hosts {
		var infos []repro.RelationInfo
		if infos, err = h.Schema(ctx); err == nil {
			return infos, nil
		}
	}
	return nil, err
}

// ParseQuery parses and schema-checks the query, falling back across hosts:
// a schema error from a live host is authoritative (the schema is
// replicated), but a transport failure moves on to the next host.
func (r *Router) ParseQuery(name, src string) (*repro.Query, error) {
	var err error
	for i, h := range r.hosts {
		var q *repro.Query
		if q, err = h.ParseQuery(name, src); err == nil {
			return q, nil
		}
		if parseAuthoritative(err) {
			return nil, err
		}
		err = r.hostErr(i, err)
	}
	return nil, err
}

// parseAuthoritative reports whether a ParseQuery failure is a verdict about
// the query itself (syntax, schema) rather than about the host that answered.
func parseAuthoritative(err error) bool {
	var syn *repro.SyntaxError
	return errors.As(err, &syn) ||
		errors.Is(err, repro.ErrUnknownRelation) ||
		errors.Is(err, repro.ErrArityMismatch)
}

// shardable reports whether the algorithm supports per-host shard specs
// (the plan-aware trie engines).
func shardable(alg repro.Algorithm) bool {
	return alg == "" || alg == repro.LFTJ || alg == repro.MS
}

// Prepare compiles the query on the cluster and returns a routed handle.
//
// The routing is decided here, once: algorithms without shard support, and
// queries whose leading GAO attribute is pinned to a constant by an equality
// predicate, route whole to a single host (the constant's owner under the
// partitioner — every matching row lives there); everything else prepares on
// every host with that host's shard spec, and executions fan out and merge.
// Options.Shard is owned by the router and rejected if set.
func (r *Router) Prepare(q *repro.Query, opts repro.Options) (repro.PreparedQuery, error) {
	if opts.Shard != nil {
		return nil, fmt.Errorf("router: Options.Shard is set by the router itself; configure a Partitioner instead")
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return nil, ErrClosed
	}
	n := len(r.hosts)
	if n == 1 {
		return r.prepareSingle(q, opts, 0, "single-host cluster")
	}
	if !shardable(opts.Algorithm) {
		return r.prepareSingle(q, opts, 0,
			fmt.Sprintf("engine %q has no shard support", opts.Algorithm))
	}
	gao, err := repro.ResolveGAO(q, opts)
	if err != nil {
		return nil, err
	}
	// Single-shard fast path: an equality predicate pinning the leading GAO
	// attribute to a constant (including in-atom constants, which the parser
	// desugars into exactly this shape) confines every result row to the
	// constant's owner.
	for _, pr := range q.Preds {
		if pr.Left == gao[0] && pr.Op == query.OpEq && !pr.IsVar {
			return r.prepareSingle(q, opts, r.part.Owner(pr.Const, n),
				fmt.Sprintf("pinned: leading attribute %s = %d under %s partitioning",
					gao[0], pr.Const, r.part.Name()))
		}
	}
	shards, err := r.part.Shards(n)
	if err != nil {
		return nil, err
	}
	globalAgg := len(q.Out()) == 0 && len(q.Aggs) > 0
	mergeCol := 0
	if !globalAgg {
		col, ok := q.VarIndex()[gao[0]]
		if !ok {
			// Defensive: a resolved GAO always draws from the query's
			// variables; fall back to single-host routing if not.
			return r.prepareSingle(q, opts, 0, "leading attribute not in output; unsharded")
		}
		mergeCol = col
	}
	hosts := make([]repro.PreparedQuery, n)
	hostIdx := make([]int, n)
	for i := range r.hosts {
		o := opts
		sh := shards[i]
		o.Shard = &sh
		p, err := r.hosts[i].Prepare(q, o)
		if err != nil {
			for j := 0; j < i; j++ {
				hosts[j].Close()
			}
			return nil, r.hostErr(i, err)
		}
		hosts[i] = p
		hostIdx[i] = i
	}
	return &Prepared{
		r: r, q: q, alg: hosts[0].Algorithm(),
		hosts: hosts, hostIdx: hostIdx,
		mergeCol: mergeCol, globalAgg: globalAgg, aggs: q.Aggs,
		shards:   shards,
		routeNote: fmt.Sprintf("fan-out over %d hosts, %s-partitioned on leading attribute %s",
			n, r.part.Name(), gao[0]),
	}, nil
}

// prepareSingle prepares the whole, unsharded query on one host. note records
// why the query routed single-host, for Explain.
func (r *Router) prepareSingle(q *repro.Query, opts repro.Options, owner int, note string) (repro.PreparedQuery, error) {
	p, err := r.hosts[owner].Prepare(q, opts)
	if err != nil {
		return nil, r.hostErr(owner, err)
	}
	return &Prepared{
		r: r, q: q, alg: p.Algorithm(),
		hosts: []repro.PreparedQuery{p}, hostIdx: []int{owner}, single: true,
		routeNote: note,
	}, nil
}

// Count evaluates the query once across the cluster (a one-shot convenience
// over Prepare).
func (r *Router) Count(ctx context.Context, q *repro.Query, opts repro.Options) (int64, error) {
	p, err := r.Prepare(q, opts)
	if err != nil {
		return 0, err
	}
	defer p.Close()
	return p.Count(ctx)
}

// Enumerate streams the query's results once across the cluster (one-shot
// over Prepare).
func (r *Router) Enumerate(ctx context.Context, q *repro.Query, opts repro.Options, emit func([]int64) bool) error {
	p, err := r.Prepare(q, opts)
	if err != nil {
		return err
	}
	defer p.Close()
	return p.Enumerate(ctx, emit)
}

// ReadTxn opens a snapshot lease on every host and returns a distributed
// read-transaction pinning them all for its life. The openings run with no
// broadcast write in flight, so the per-host snapshots agree on the write
// prefix they reflect; executions through the transaction therefore observe
// one consistent cluster state no matter how many writes land concurrently.
// Close the transaction to release the leases.
func (r *Router) ReadTxn() (repro.QueryTxn, error) {
	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		return nil, ErrClosed
	}
	n := len(r.hosts)
	txns := make([]repro.QueryTxn, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, h := range r.hosts {
		wg.Add(1)
		go func(i int, h repro.Querier) {
			defer wg.Done()
			txns[i], errs[i] = h.ReadTxn()
		}(i, h)
	}
	wg.Wait()
	r.mu.RUnlock()
	for i, err := range errs {
		if err != nil {
			for _, t := range txns {
				if t != nil {
					t.Close()
				}
			}
			return nil, r.hostErr(i, err)
		}
	}
	return &Txn{r: r, txns: txns}, nil
}

// Batch executes many prepared queries against one cluster-consistent
// snapshot, with per-request error isolation: every request runs inside one
// internal distributed read-transaction, so the batch observes a single
// write generation across all hosts, exactly as a store-local Batch observes
// one snapshot.
func (r *Router) Batch(ctx context.Context, reqs []repro.BatchRequest) ([]repro.Result, error) {
	t, err := r.ReadTxn()
	if err != nil {
		return nil, err
	}
	dt := t.(*Txn)
	defer dt.Close()
	results := make([]repro.Result, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		p, ok := req.Prepared.(*Prepared)
		if !ok || p.r != r {
			results[i] = repro.Result{Err: fmt.Errorf("router: %w", repro.ErrForeignPrepared)}
			continue
		}
		wg.Add(1)
		go func(i int, p *Prepared, rows bool) {
			defer wg.Done()
			var res repro.Result
			if rows {
				res.Err = p.enumerate(ctx, dt.txns, func(row []int64) bool {
					res.Rows = append(res.Rows, append([]int64(nil), row...))
					return true
				})
				res.Count = int64(len(res.Rows))
			} else {
				res.Count, res.Err = p.count(ctx, dt.txns)
			}
			results[i] = res
		}(i, p, req.Rows)
	}
	wg.Wait()
	return results, nil
}

// Txn is a distributed snapshot read-transaction: one lease per host, all
// opened against the same write prefix, all pinned until Close. It satisfies
// repro.QueryTxn; handles passed to it must come from the same router.
type Txn struct {
	r    *Router
	txns []repro.QueryTxn

	mu     sync.Mutex
	closed bool
}

var _ repro.QueryTxn = (*Txn)(nil)

// unwrap asserts the shared handle back to this router's routed type.
func (t *Txn) unwrap(p repro.PreparedQuery) (*Prepared, error) {
	rp, ok := p.(*Prepared)
	if !ok || rp.r != t.r {
		return nil, fmt.Errorf("router: %w", repro.ErrForeignPrepared)
	}
	return rp, nil
}

// Count executes the routed query against the transaction's cluster
// snapshot.
func (t *Txn) Count(ctx context.Context, p repro.PreparedQuery) (int64, error) {
	rp, err := t.unwrap(p)
	if err != nil {
		return 0, err
	}
	return rp.count(ctx, t.txns)
}

// Enumerate streams the routed query's merged results against the
// transaction's cluster snapshot.
func (t *Txn) Enumerate(ctx context.Context, p repro.PreparedQuery, emit func([]int64) bool) error {
	rp, err := t.unwrap(p)
	if err != nil {
		return err
	}
	return rp.enumerate(ctx, t.txns, emit)
}

// Rows is Enumerate as a streaming iterator with owned tuple copies.
func (t *Txn) Rows(ctx context.Context, p repro.PreparedQuery) iter.Seq[[]int64] {
	return rowsSeq(func(ctx context.Context, emit func([]int64) bool) error {
		return t.Enumerate(ctx, p, emit)
	}, ctx)
}

// RowsErr is Rows with the explicit-error protocol.
func (t *Txn) RowsErr(ctx context.Context, p repro.PreparedQuery) iter.Seq2[[]int64, error] {
	return rowsErrSeq(func(ctx context.Context, emit func([]int64) bool) error {
		return t.Enumerate(ctx, p, emit)
	}, ctx)
}

// Close releases every host's lease. Safe to call repeatedly.
func (t *Txn) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	var first error
	for i, tx := range t.txns {
		if err := tx.Close(); err != nil && first == nil {
			first = t.r.hostErr(i, err)
		}
	}
	return first
}
